package storm

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/upt"
	"govolve/internal/vm"
)

// Config tunes one storm run. Everything observable is a deterministic
// function of Seed, so a failure reproduces by re-running with the seed
// printed in the error message.
type Config struct {
	Seed      int64
	Classes   int // initial generated classes (default 6)
	Updates   int // applied updates to drive through the pipeline (default 40)
	Mutations int // max mutations composed per update (default 3)
	Specimens int // tracked live instances per generated class (default 3)

	HeapWords    int // semi-space words (default 1<<16)
	ScratchWords int // DSU scratch region words (default 0: old copies burn to-space)
	MaxAttempts  int // safe-point attempts before abort (default 400)
	FastDefaults bool
	OSROpt       bool
	// Workers selects the collection strategy (<=1 serial, N>1 the
	// parallel copy/scan collector). The storm's invariants are
	// strategy-blind, so running the same seed at different worker counts
	// is an end-to-end serial/parallel equivalence check.
	Workers int
	// ConcurrentMark moves updated-instance discovery out of each update's
	// pause (the SATB concurrent mark). The storm's invariants are also
	// discovery-strategy-blind: every applied update still runs the full
	// whole-VM sweep through AfterUpdate.
	ConcurrentMark bool
	// ConcurrentReloc moves the DSU copy itself out of each update's pause:
	// the world resumes with from-space still live behind the self-healing
	// load barrier while relocator workers drain it. AfterUpdate's CheckVM
	// then runs with the drain in flight (the walk heals as it reads), the
	// shadow oracle reads ride the same barrier, and the drain finishes on
	// its own during the following era — no step of the drive sequence
	// consumes extra rng or Steps, so a reloc run must produce a Report
	// equal to the same seed's eager run.
	ConcurrentReloc bool
	// BaseTierOnly pins the VM to the base interpreter: no trace promotion,
	// no opt recompilation, so no fused superinstructions and no inline
	// caches ever run. Fused handlers replicate the base tier's step
	// accounting and yield-point placement exactly, so a base-only run
	// must produce a Report byte-identical to the same seed's FusedOnly
	// run — the tier-equivalence check that proves superinstructions and
	// ICs are observationally invisible under a live update storm.
	BaseTierOnly bool
	// FusedOnly keeps trace promotion, superinstruction fusion and inline
	// caches (the PR's new tier) but pins opt recompilation out of reach.
	// The opt tier's inlining removes method-entry yield points, which
	// legitimately shifts slice boundaries and thus the rng trajectory —
	// so the byte-identical tier-equivalence check compares BaseTierOnly
	// against FusedOnly, the two tiers that share yield-point placement.
	FusedOnly bool
	// OptThreshold overrides the VM's opt-recompilation invocation count
	// (0 keeps the VM default of 50). The stale-IC storm config sets this
	// low so the snap probe methods — each a hot monomorphic virtual call
	// site on a class the updates keep replacing — reach the IC-carrying
	// opt tier within a couple of checks, putting inline caches directly
	// in the oracle's line of fire.
	OptThreshold int
	// Lazy runs every update with lazy per-object transformation: objects
	// leave the pause tagged and transform on first touch behind the read
	// barrier. AfterUpdate's CheckVM then runs mid-drain (exercising the
	// drain-aware gauges), the probe pass fires the barrier through real
	// bytecode, and the harness force-drains the residue before the raw-heap
	// oracle reads. The drive sequence consumes rng and Steps identically to
	// eager mode, so a lazy run must produce a Report equal to the same
	// seed's eager run — the lazy/eager equivalence check.
	Lazy bool

	// InjectTransformerBug (test-only) overrides the first default object
	// transformer of every update with an empty body, simulating a broken
	// transformer; the shadow oracle must catch it.
	InjectTransformerBug bool

	// EventTail is how many flight-recorder events a failure report embeds
	// alongside the reproducing seed (default 40; negative disables the
	// recorder entirely). The recorder rides along for the whole run, so the
	// tail shows the DSU activity — safe-point attempts, barriers, phase
	// spans, transformer events — leading up to the violation.
	EventTail int

	// GateSpecs overrides the per-update health gates the engine evaluates
	// over metric snapshots bracketing every update (nil means
	// obs.DefaultGateSpecs); GatePolicy is the engine's FAIL reaction
	// (GateObserve by default). Gating is always armed — bootVM creates a
	// private registry when none is attached — so every storm update
	// produces a Verdict, and failure reports carry the last one.
	GateSpecs  []obs.GateSpec
	GatePolicy core.GatePolicy

	// Metrics, if set, attaches the registry to the VM so the engine, the
	// gates and the obs plane publish into it (a private registry is used
	// when nil — see GateSpecs).
	Metrics *obs.Registry

	Log io.Writer // optional progress log
}

func (c Config) withDefaults() Config {
	if c.Classes <= 0 {
		c.Classes = 6
	}
	if c.Updates <= 0 {
		c.Updates = 40
	}
	if c.Mutations <= 0 {
		c.Mutations = 3
	}
	if c.Specimens <= 0 {
		c.Specimens = 3
	}
	if c.HeapWords <= 0 {
		c.HeapWords = 1 << 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 400
	}
	if c.EventTail == 0 {
		c.EventTail = 40
	}
	return c
}

// Report summarizes one storm run.
type Report struct {
	Seed     int64
	Applied  int // updates that committed
	Aborted  int // updates that timed out at the safe-point search
	Rejected int // candidate diffs UPT legally refused (hierarchy permutations)
	Checks   int // full invariant sweeps that ran
	Probes   int // bytecode probe cross-checks executed
	Specs    int // specimens tracked at exit
	Steps    int64
}

// specimen is one Go-tracked heap object: the shadow of its fields is the
// transformer oracle. The handle index pins it as a GC root and stays
// valid across collections (the GC forwards handles in place).
type specimen struct {
	class   string
	handle  int
	deleted bool             // class was deleted; shadow frozen
	ints    map[string]int64 // instance int fields by (globally unique) name
	refs    map[string]int   // instance ref fields: specimen handle index or -1
}

// classStatics shadows one generated class's static fields.
type classStatics struct {
	class string
	ints  map[string]int64
	refs  map[string]int
}

// intArray / refArray shadow driver-allocated arrays (arrays are never
// transformed, so their contents must survive every update verbatim).
type intArray struct {
	handle int
	elems  []int64
}
type refArray struct {
	handle int
	elems  []int // specimen handle index or -1
}

type runner struct {
	cfg Config
	rng *rand.Rand
	v   *vm.VM
	eng *core.Engine
	rep *Report

	model *model
	prog  *classfile.Program

	specs   []*specimen
	statics []*classStatics
	intArrs []*intArray
	refArrs []*refArray
	conns   []int64

	updateIdx int
	hookErr   error

	rec *obs.Recorder // nil when Config.EventTail < 0
}

// Run executes one storm: boot the generated program, then alternate
// workload eras with updates until cfg.Updates have been applied, checking
// every invariant after each one. The returned error, if any, carries the
// reproducing seed.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := &runner{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		rep: &Report{Seed: cfg.Seed},
	}
	if err := r.boot(); err != nil {
		return r.rep, err
	}
	// Bounded total attempts: aborted/rejected updates don't count toward
	// the target but must not loop forever.
	for tries := 0; r.rep.Applied < cfg.Updates; tries++ {
		if tries >= 3*cfg.Updates+20 {
			return r.rep, r.failf("only %d/%d updates applied after %d attempts (%d aborted, %d rejected)",
				r.rep.Applied, cfg.Updates, tries, r.rep.Aborted, r.rep.Rejected)
		}
		if err := r.era(); err != nil {
			return r.rep, err
		}
		if err := r.update(); err != nil {
			return r.rep, err
		}
	}
	r.rep.Specs = len(r.specs)
	return r.rep, nil
}

func (r *runner) failf(format string, args ...any) error {
	msg := fmt.Sprintf("storm: seed=%d update=%d: %s", r.cfg.Seed, r.updateIdx, fmt.Sprintf(format, args...))
	if r.eng != nil && r.eng.Gate != nil {
		if v := r.eng.Gate.Last(); v != nil {
			msg += "\nlast gate " + v.String()
		}
	}
	if tail := r.rec.Last(r.cfg.EventTail); len(tail) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "%s\nflight recorder (last %d of %d events):\n", msg, len(tail), r.rec.Total())
		obs.WriteEvents(&b, tail)
		return errors.New(strings.TrimRight(b.String(), "\n"))
	}
	return errors.New(msg)
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Log != nil {
		fmt.Fprintf(r.cfg.Log, format+"\n", args...)
	}
}

// --- boot -------------------------------------------------------------------

func (r *runner) boot() error {
	r.model = newModel(r.rng, r.cfg.Classes)
	prog, err := r.model.program()
	if err != nil {
		return r.failf("initial program build: %v", err)
	}
	r.prog = prog
	return r.bootVM(r.cfg.Metrics)
}

// bootVM stands up the VM, engine, checker hook and workload for whatever
// model/program pair the runner already holds — the shared half of boot,
// also entered by the chain Driver with an externally generated Version.
func (r *runner) bootVM(metrics *obs.Registry) error {
	opts := vm.Options{
		HeapWords:        r.cfg.HeapWords,
		ScratchWords:     r.cfg.ScratchWords,
		GCWorkers:        r.cfg.Workers,
		GCConcurrentMark: r.cfg.ConcurrentMark,
		ConcurrentReloc:  r.cfg.ConcurrentReloc,
		LazyTransform:    r.cfg.Lazy,
		OptThreshold:     r.cfg.OptThreshold,
		Out:              io.Discard,
	}
	if r.cfg.BaseTierOnly {
		opts.TraceThreshold = -1
		opts.OptThreshold = 1 << 30
		opts.NoInlineCache = true
	}
	if r.cfg.FusedOnly {
		opts.OptThreshold = 1 << 30
	}
	v, err := vm.New(opts)
	if err != nil {
		return r.failf("vm: %v", err)
	}
	r.v = v
	if r.cfg.EventTail > 0 {
		r.rec = obs.NewRecorder(obs.DefaultCapacity)
	}
	if metrics == nil {
		// Gate evaluation needs a registry to snapshot; a private one keeps
		// every storm/stream update judged even when no caller scrapes it.
		metrics = obs.NewRegistry()
	}
	v.AttachObs(r.rec, metrics)
	r.eng = core.NewEngine(v)
	r.eng.AttachGates(obs.NewGateEngine(r.cfg.GateSpecs, 0, metrics), r.cfg.GatePolicy)
	// The checker hook: run the structural sweep the instant each update
	// resolves, before any mutator step can mask a violation.
	r.eng.AfterUpdate = func(res *core.Result) {
		if r.hookErr == nil {
			r.hookErr = CheckVM(r.v)
		}
	}

	if err := v.LoadProgram(r.prog); err != nil {
		return r.failf("load: %v", err)
	}
	if _, err := v.SpawnMain("StormMain"); err != nil {
		return r.failf("spawn: %v", err)
	}
	v.Step(64) // let main bind the port and spawn the workload threads

	r.syncStatics()
	if err := r.ensureSpecimens(); err != nil {
		return err
	}
	// A couple of arrays for the array-contents invariant.
	for i := 0; i < 2; i++ {
		if err := r.allocArrays(); err != nil {
			return err
		}
	}
	return r.checkAll()
}

// addr reads a specimen-or-array handle's current address (handles are
// forwarded in place by the GC, so never cache the address).
func (r *runner) addrOf(handle int) rt.Addr { return r.v.Handles[handle].Ref() }

func (r *runner) allocObject(class string) (rt.Addr, error) {
	cls := r.v.Reg.LookupClass(class)
	if cls == nil {
		return 0, r.failf("allocObject: class %s not registered", class)
	}
	a, ok := r.v.Heap.AllocObject(cls)
	if !ok {
		if _, err := r.v.CollectGarbage(); err != nil {
			return 0, r.failf("gc for alloc: %v", err)
		}
		if a, ok = r.v.Heap.AllocObject(cls); !ok {
			return 0, r.failf("heap exhausted allocating %s", class)
		}
	}
	return a, nil
}

// ensureSpecimens tops up the live-specimen pool so every current model
// class has cfg.Specimens tracked instances (new classes get theirs the
// update after they appear).
func (r *runner) ensureSpecimens() error {
	count := make(map[string]int)
	for _, s := range r.specs {
		if !s.deleted {
			count[s.class]++
		}
	}
	for _, c := range r.model.classes {
		for count[c.name] < r.cfg.Specimens {
			a, err := r.allocObject(c.name)
			if err != nil {
				return err
			}
			r.v.PushHandle(a)
			s := &specimen{
				class:  c.name,
				handle: len(r.v.Handles) - 1,
				ints:   make(map[string]int64),
				refs:   make(map[string]int),
			}
			for _, f := range r.model.flatInstanceFields(c.name) {
				if f.desc == "I" {
					s.ints[f.name] = 0
				} else {
					s.refs[f.name] = -1
				}
			}
			r.specs = append(r.specs, s)
			count[c.name]++
		}
	}
	return nil
}

func (r *runner) allocArrays() error {
	n := 4 + r.rng.Intn(5)
	ia, ok := r.v.Heap.AllocArray(false, n)
	if !ok {
		return r.failf("heap exhausted allocating int array")
	}
	r.v.PushHandle(ia)
	r.intArrs = append(r.intArrs, &intArray{handle: len(r.v.Handles) - 1, elems: make([]int64, n)})

	m := 3 + r.rng.Intn(4)
	ra, ok := r.v.Heap.AllocArray(true, m)
	if !ok {
		return r.failf("heap exhausted allocating ref array")
	}
	r.v.PushHandle(ra)
	r.refArrs = append(r.refArrs, &refArray{handle: len(r.v.Handles) - 1, elems: makeNegOnes(m)})
	return nil
}

func makeNegOnes(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// syncStatics rebuilds the statics shadow list for the current model,
// carrying existing shadow values for classes that survive.
func (r *runner) syncStatics() {
	old := make(map[string]*classStatics, len(r.statics))
	for _, cs := range r.statics {
		old[cs.class] = cs
	}
	var out []*classStatics
	for _, c := range r.model.classes {
		cs := old[c.name]
		if cs == nil {
			cs = &classStatics{class: c.name, ints: make(map[string]int64), refs: make(map[string]int)}
		}
		// Prune/add entries to match current static fields.
		ints := make(map[string]int64)
		refs := make(map[string]int)
		for _, f := range c.fields {
			if !f.static || f.name == hubOut {
				continue
			}
			if f.desc == "I" {
				ints[f.name] = cs.ints[f.name]
			} else {
				ref, ok := cs.refs[f.name]
				if !ok {
					ref = -1
				}
				refs[f.name] = ref
			}
		}
		cs.ints, cs.refs = ints, refs
		out = append(out, cs)
	}
	r.statics = out
}

// --- workload era -----------------------------------------------------------

// era runs the mutator between updates: scheduler slices, client traffic
// against the acceptor, random field/static/array pokes (mirrored into the
// shadow), and the occasional plain collection.
func (r *runner) era() error {
	rounds := 20 + r.rng.Intn(20)
	for i := 0; i < rounds; i++ {
		r.v.Step(1 + r.rng.Intn(6))
		r.rep.Steps++
		if r.rng.Intn(3) == 0 {
			r.traffic()
		}
		if r.rng.Intn(4) == 0 {
			r.poke()
		}
	}
	if r.rng.Intn(4) == 0 {
		if _, err := r.v.CollectGarbage(); err != nil {
			return r.failf("plain collection: %v", err)
		}
		return r.checkAll()
	}
	return nil
}

// traffic drives the NetSim client side: connect to the storm port, send a
// line, collect replies, close — keeping the connection table churning so
// the acceptor alternates between blocked-in-accept and serving.
func (r *runner) traffic() {
	net := r.v.Net
	if len(r.conns) < 3 && net.Listening(stormPort) && r.rng.Intn(2) == 0 {
		if id, err := net.Connect(stormPort); err == nil {
			_ = net.ClientSend(id, "ping")
			r.conns = append(r.conns, id)
		}
	}
	for i := 0; i < len(r.conns); {
		id := r.conns[i]
		_, got := net.ClientRecv(id)
		if got || net.ClientClosed(id) || r.rng.Intn(8) == 0 {
			net.ClientClose(id)
			r.conns = append(r.conns[:i], r.conns[i+1:]...)
			continue
		}
		i++
	}
}

// pickSpecimen returns a random live specimen assignable to desc, or nil.
func (r *runner) pickSpecimen(desc string) *specimen {
	var cands []*specimen
	for _, s := range r.specs {
		if desc == "LObject;" {
			cands = append(cands, s) // anything is an Object, even deleted
			continue
		}
		if !s.deleted && "L"+s.class+";" == desc {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[r.rng.Intn(len(cands))]
}

// poke writes random values into tracked specimen fields, statics, and
// arrays — through the real heap — and mirrors every write in the shadow.
func (r *runner) poke() {
	// Specimen instance fields.
	for n := 0; n < 2; n++ {
		if len(r.specs) == 0 {
			break
		}
		s := r.specs[r.rng.Intn(len(r.specs))]
		if s.deleted {
			continue
		}
		cls := r.v.Reg.LookupClass(s.class)
		if cls == nil {
			continue
		}
		for _, f := range r.model.flatInstanceFields(s.class) {
			if r.rng.Intn(3) != 0 {
				continue
			}
			slot := cls.Field(f.name)
			if slot == nil {
				continue
			}
			a := r.addrOf(s.handle)
			if f.desc == "I" {
				val := int64(r.rng.Intn(1 << 16))
				r.v.Heap.SetFieldValue(a, slot.Offset, rt.IntVal(val))
				s.ints[f.name] = val
			} else {
				target := r.pickSpecimen(f.desc)
				if target == nil || r.rng.Intn(5) == 0 {
					r.v.Heap.SetFieldValue(a, slot.Offset, rt.NullVal)
					s.refs[f.name] = -1
				} else {
					r.v.Heap.SetFieldValue(a, slot.Offset, rt.RefVal(r.addrOf(target.handle)))
					s.refs[f.name] = target.handle
				}
			}
		}
	}
	// Statics.
	if len(r.statics) > 0 {
		cs := r.statics[r.rng.Intn(len(r.statics))]
		cls := r.v.Reg.LookupClass(cs.class)
		c, _ := r.model.find(cs.class)
		if cls != nil && c != nil {
			for _, f := range c.fields {
				if !f.static || f.name == hubOut || r.rng.Intn(2) != 0 {
					continue
				}
				ss := cls.StaticField(f.name)
				if ss == nil {
					continue
				}
				if f.desc == "I" {
					val := int64(r.rng.Intn(1 << 16))
					r.v.Reg.JTOC[ss.Slot] = rt.IntVal(val)
					cs.ints[f.name] = val
				} else if target := r.pickSpecimen(f.desc); target != nil {
					r.v.Reg.JTOC[ss.Slot] = rt.RefVal(r.addrOf(target.handle))
					cs.refs[f.name] = target.handle
				} else {
					r.v.Reg.JTOC[ss.Slot] = rt.NullVal
					cs.refs[f.name] = -1
				}
			}
		}
	}
	// Arrays.
	if len(r.intArrs) > 0 {
		ar := r.intArrs[r.rng.Intn(len(r.intArrs))]
		i := r.rng.Intn(len(ar.elems))
		val := int64(r.rng.Intn(1 << 16))
		r.v.Heap.SetElem(r.addrOf(ar.handle), i, rt.IntVal(val))
		ar.elems[i] = val
	}
	if len(r.refArrs) > 0 {
		ar := r.refArrs[r.rng.Intn(len(r.refArrs))]
		i := r.rng.Intn(len(ar.elems))
		if target := r.pickSpecimen("LObject;"); target != nil && r.rng.Intn(4) != 0 {
			r.v.Heap.SetElem(r.addrOf(ar.handle), i, rt.RefVal(r.addrOf(target.handle)))
			ar.elems[i] = target.handle
		} else {
			r.v.Heap.SetElem(r.addrOf(ar.handle), i, rt.NullVal)
			ar.elems[i] = -1
		}
	}
}

// --- the update -------------------------------------------------------------

// update mutates the model, prepares the diff through UPT, drives it
// through the engine against the live VM, advances the shadow on success,
// and runs the full invariant sweep.
func (r *runner) update() error {
	var (
		spec    *upt.Spec
		next    *model
		newProg *classfile.Program
	)
	for attempt := 0; ; attempt++ {
		if attempt >= 25 {
			return r.failf("no acceptable mutation batch after %d attempts", attempt)
		}
		next = r.model.clone()
		descs := mutateBatch(next, r.model, r.rng, r.cfg.Mutations)
		if len(descs) == 0 {
			continue
		}
		np, err := next.program()
		if err != nil {
			return r.failf("candidate program build (%v): %v", descs, err)
		}
		sp, err := upt.Prepare(fmt.Sprintf("%d", r.updateIdx+1), r.prog, np)
		if err != nil {
			// A legality limit (e.g. a hierarchy permutation composed out
			// of individually-legal mutations): UPT refusing is correct
			// behaviour, not a storm failure. Try another batch.
			r.rep.Rejected++
			continue
		}
		if len(sp.Diffs) == 0 && len(sp.AddedClasses) == 0 && len(sp.DeletedClasses) == 0 {
			continue // mutations cancelled out; not a real update
		}
		spec, newProg = sp, np
		r.logf("update %d: %v (class updates %v, bodies %d, +%d/-%d classes)",
			r.updateIdx+1, descs, sp.ClassUpdates, len(sp.MethodBodyUpdates),
			len(sp.AddedClasses), len(sp.DeletedClasses))
		break
	}

	if r.cfg.InjectTransformerBug {
		r.injectBug(spec)
	}

	pending, err := r.eng.RequestUpdate(spec, core.Options{
		Timeout:      time.Hour, // determinism: only MaxAttempts aborts
		MaxAttempts:  r.cfg.MaxAttempts,
		FastDefaults: r.cfg.FastDefaults,
		OSROpt:       r.cfg.OSROpt,
	})
	if err != nil {
		return r.failf("update rejected by verifier: %v", err)
	}
	for i := 0; !pending.Done(); i++ {
		if i > 50_000_000 {
			return r.failf("update did not resolve")
		}
		r.v.Step(1)
		r.rep.Steps++
		if i%64 == 63 {
			r.traffic() // keep the acceptor waking up mid-update
		}
	}

	res := pending.Result()
	switch res.Outcome {
	case core.Applied:
		r.rep.Applied++
		r.updateIdx++
		r.shadowApply(spec, next)
		r.model = next
		r.prog = newProg
		r.syncStatics()
		if err := r.ensureSpecimens(); err != nil {
			return err
		}
	case core.Aborted:
		r.rep.Aborted++
	default:
		return r.failf("update failed mid-flight: %v", res.Err)
	}
	if r.hookErr != nil {
		err := r.failf("post-update hook: %v", r.hookErr)
		r.hookErr = nil
		return err
	}
	return r.checkAll()
}

// injectBug overrides the first default object transformer with an empty
// body — the deliberate fault the checker must catch (tests only).
func (r *runner) injectBug(spec *upt.Spec) {
	if name := injectEmptyTransformer(spec); name != "" {
		r.logf("update %d: injected empty transformer for %s", r.updateIdx+1, name)
	}
}

// shadowApply advances the Go-side shadow across an applied update using
// exactly UPT's default-transformer rule: for every field of the new
// flattened layout, carry the old value when the renamed old flat
// definition has a field of the same name, same desc, same static-ness;
// otherwise default it (0 / null). This is the oracle the heap is checked
// against afterwards.
func (r *runner) shadowApply(spec *upt.Spec, next *model) {
	updated := make(map[string]bool, len(spec.ClassUpdates))
	for _, n := range spec.ClassUpdates {
		updated[n] = true
	}
	deleted := make(map[string]bool, len(spec.DeletedClasses))
	for _, n := range spec.DeletedClasses {
		deleted[n] = true
	}

	for _, s := range r.specs {
		if s.deleted {
			continue
		}
		if deleted[s.class] {
			s.deleted = true // lives on under the old, unregistered class
			continue
		}
		if !updated[s.class] {
			continue
		}
		flat := spec.OldFlatDefs[spec.RenamedName(s.class)]
		ints := make(map[string]int64)
		refs := make(map[string]int)
		for _, nf := range next.flatInstanceFields(s.class) {
			var of *classfile.Field
			if flat != nil {
				of = flat.Field(nf.name)
			}
			carried := of != nil && !of.Static && string(of.Desc) == nf.desc
			if nf.desc == "I" {
				if carried {
					ints[nf.name] = s.ints[nf.name]
				} else {
					ints[nf.name] = 0
				}
			} else {
				if carried {
					if old, ok := s.refs[nf.name]; ok {
						refs[nf.name] = old
					} else {
						refs[nf.name] = -1
					}
				} else {
					refs[nf.name] = -1
				}
			}
		}
		s.ints, s.refs = ints, refs
	}

	// Statics: same rule against the flat old defs; non-updated surviving
	// classes keep their slots and their shadow untouched.
	for _, cs := range r.statics {
		if !updated[cs.class] {
			continue
		}
		c, _ := next.find(cs.class)
		if c == nil {
			continue // deleted; syncStatics will drop it
		}
		flat := spec.OldFlatDefs[spec.RenamedName(cs.class)]
		ints := make(map[string]int64)
		refs := make(map[string]int)
		for _, f := range c.fields {
			if !f.static || f.name == hubOut {
				continue
			}
			var of *classfile.Field
			if flat != nil {
				of = flat.Field(f.name)
			}
			carried := of != nil && of.Static && string(of.Desc) == f.desc
			if f.desc == "I" {
				if carried {
					ints[f.name] = cs.ints[f.name]
				} else {
					ints[f.name] = 0
				}
			} else {
				if carried {
					if old, ok := cs.refs[f.name]; ok {
						refs[f.name] = old
					} else {
						refs[f.name] = -1
					}
				} else {
					refs[f.name] = -1
				}
			}
		}
		cs.ints, cs.refs = ints, refs
	}
}

// --- the invariant sweep ----------------------------------------------------

// checkAll is the full post-update check: the generic whole-VM sweep, the
// shadow oracle over every tracked specimen/static/array, and the bytecode
// probe cross-check (running probe()I through real dispatch against
// freshly compiled code and comparing with the shadow sum).
func (r *runner) checkAll() error {
	r.rep.Checks++
	if r.cfg.Lazy {
		// Lazy mode reorders the sweep so both halves of the machinery get
		// exercised every update: the probe pass first — its snap() bytecode
		// dereferences every specimen through real dispatch, firing the read
		// barrier per object — then a forced drain of whatever the probes
		// did not touch. Only then are the raw-heap oracle reads valid (they
		// bypass the interpreter, so an untransformed shell would read as
		// corruption). RunSynchronous probes consume no rng and no scheduler
		// steps, so the reorder keeps the run step-identical to eager mode.
		if err := r.checkProbes(); err != nil {
			return err
		}
		if err := r.eng.ForceDrain(); err != nil {
			return r.failf("lazy drain: %v", err)
		}
		if err := CheckVM(r.v); err != nil {
			return r.failf("invariant: %v", err)
		}
		if err := r.checkSpecimens(); err != nil {
			return err
		}
		if err := r.checkStatics(); err != nil {
			return err
		}
		return r.checkArrays()
	}
	if err := CheckVM(r.v); err != nil {
		return r.failf("invariant: %v", err)
	}
	if err := r.checkSpecimens(); err != nil {
		return err
	}
	if err := r.checkStatics(); err != nil {
		return err
	}
	if err := r.checkArrays(); err != nil {
		return err
	}
	return r.checkProbes()
}

func (r *runner) specimenClass(s *specimen) (*rt.Class, error) {
	a := r.addrOf(s.handle)
	cls := r.v.Reg.ClassByID(r.v.Heap.ClassID(a))
	if cls == nil {
		return nil, r.failf("specimen %s@%d: unknown class id %d", s.class, a, r.v.Heap.ClassID(a))
	}
	if cls.Name != s.class {
		return nil, r.failf("specimen handle %d: expected class %s, heap says %s", s.handle, s.class, cls.Name)
	}
	if cls.Renamed {
		return nil, r.failf("specimen %s@%d still types as renamed old version", s.class, a)
	}
	if !s.deleted && r.v.Reg.LookupClass(s.class) != cls {
		return nil, r.failf("specimen %s@%d uses stale metadata for a live class", s.class, a)
	}
	return cls, nil
}

// checkSpecimens is the transformer oracle: every tracked instance must
// hold exactly the shadow's field values — unchanged fields preserved,
// added/retyped fields defaulted — and ref fields must point at the
// current (forwarded) addresses of the shadow's target specimens.
func (r *runner) checkSpecimens() error {
	for _, s := range r.specs {
		cls, err := r.specimenClass(s)
		if err != nil {
			return err
		}
		a := r.addrOf(s.handle)
		for name, want := range s.ints {
			slot := cls.Field(name)
			if slot == nil {
				return r.failf("specimen %s@%d: shadow field %s missing from layout", s.class, a, name)
			}
			got := r.v.Heap.FieldValue(a, slot.Offset, false).Int()
			if got != want {
				return r.failf("transformer oracle: %s@%d.%s = %d, shadow says %d", s.class, a, name, got, want)
			}
		}
		for name, wantHandle := range s.refs {
			slot := cls.Field(name)
			if slot == nil {
				return r.failf("specimen %s@%d: shadow ref field %s missing from layout", s.class, a, name)
			}
			got := r.v.Heap.FieldValue(a, slot.Offset, true).Ref()
			want := rt.Null
			if wantHandle >= 0 {
				want = r.addrOf(wantHandle)
			}
			if got != want {
				return r.failf("transformer oracle: %s@%d.%s = @%d, shadow says @%d", s.class, a, name, got, want)
			}
		}
		// The layout must not carry shadow-unknown extras among the
		// tracked names (layout and shadow derive from the same model, so
		// a mismatch in count means the flattening diverged).
		if !s.deleted {
			flat := r.model.flatInstanceFields(s.class)
			if len(flat) != len(s.ints)+len(s.refs) {
				return r.failf("specimen %s: shadow tracks %d fields, model layout has %d",
					s.class, len(s.ints)+len(s.refs), len(flat))
			}
		}
	}
	return nil
}

func (r *runner) checkStatics() error {
	for _, cs := range r.statics {
		cls := r.v.Reg.LookupClass(cs.class)
		if cls == nil {
			return r.failf("statics shadow: class %s not registered", cs.class)
		}
		c, _ := r.model.find(cs.class)
		if c == nil {
			return r.failf("statics shadow: class %s missing from model", cs.class)
		}
		for _, f := range c.fields {
			if !f.static || f.name == hubOut {
				continue
			}
			ss := cls.StaticField(f.name)
			if ss == nil {
				return r.failf("statics shadow: %s.%s missing from class", cs.class, f.name)
			}
			got := r.v.Reg.JTOC[ss.Slot]
			if f.desc == "I" {
				if got.Int() != cs.ints[f.name] {
					return r.failf("class transformer oracle: %s.%s = %d, shadow says %d",
						cs.class, f.name, got.Int(), cs.ints[f.name])
				}
			} else {
				want := rt.Null
				if h := cs.refs[f.name]; h >= 0 {
					want = r.addrOf(h)
				}
				if got.Ref() != want {
					return r.failf("class transformer oracle: %s.%s = @%d, shadow says @%d",
						cs.class, f.name, got.Ref(), want)
				}
			}
		}
	}
	return nil
}

func (r *runner) checkArrays() error {
	for _, ar := range r.intArrs {
		a := r.addrOf(ar.handle)
		if n := r.v.Heap.ArrayLen(a); n != len(ar.elems) {
			return r.failf("int array @%d: length %d, shadow says %d", a, n, len(ar.elems))
		}
		for i, want := range ar.elems {
			if got := r.v.Heap.Elem(a, i).Int(); got != want {
				return r.failf("int array @%d[%d] = %d, shadow says %d", a, i, got, want)
			}
		}
	}
	for _, ar := range r.refArrs {
		a := r.addrOf(ar.handle)
		if n := r.v.Heap.ArrayLen(a); n != len(ar.elems) {
			return r.failf("ref array @%d: length %d, shadow says %d", a, n, len(ar.elems))
		}
		for i, h := range ar.elems {
			want := rt.Null
			if h >= 0 {
				want = r.addrOf(h)
			}
			if got := r.v.Heap.Elem(a, i).Ref(); got != want {
				return r.failf("ref array @%d[%d] = @%d, shadow says @%d", a, i, got, want)
			}
		}
	}
	return nil
}

// checkProbes runs each live specimen's probe()I through real bytecode —
// virtual dispatch, getfield against freshly compiled code — and compares
// with the shadow's flattened int-field sum. This is the stale-offset
// detector: a compiled method with baked-in old offsets, or a transformer
// that scrambled the layout, shows up as a probe mismatch.
func (r *runner) checkProbes() error {
	for _, s := range r.specs {
		if s.deleted {
			continue
		}
		cls := r.v.Reg.LookupClass(s.class)
		if cls == nil {
			return r.failf("probe: class %s not registered", s.class)
		}
		m := cls.Method("snap", classfile.Sig("(L"+s.class+";)V"))
		if m == nil {
			return r.failf("probe: %s has no snap method", s.class)
		}
		if err := r.v.RunSynchronous("storm-probe", m, []rt.Value{rt.RefVal(r.addrOf(s.handle))}); err != nil {
			return r.failf("probe of %s: %v", s.class, err)
		}
		hub := r.v.Reg.LookupClass(hubClass)
		out := hub.StaticField(hubOut)
		got := r.v.Reg.JTOC[out.Slot].Int()
		var want int64
		for _, v := range s.ints {
			want += v
		}
		if got != want {
			return r.failf("probe oracle: %s probe()I = %d, shadow sum = %d", s.class, got, want)
		}
		r.rep.Probes++
	}
	return nil
}
