package storm

import (
	"fmt"

	"govolve/internal/gc"
	"govolve/internal/rt"
	"govolve/internal/vm"
)

// maxDeadErrorsGauge mirrors the VM's internal bound on the DeadErrors log
// (vm.maxDeadErrors); the checker treats growth past it as a leak.
const maxDeadErrorsGauge = 128

// CheckVM runs the whole-VM invariant sweep: registry metadata, a full
// reachable-heap walk, a stack walk over every live frame, and bounded
// gauges on the scheduler and NetSim tables. It is read-only — safe to
// call between any two scheduler slices — and is designed to run after
// every update: the storm harness calls it from core.Engine.AfterUpdate,
// and the E5 matrix test calls it after each of the 22 server updates.
//
// Invariants, in order:
//
//   - registry: no registered class is a renamed old version, none has a
//     pending UpdatedTo link outside an update, every class's ref map and
//     field offsets agree, every static slot is inside the JTOC;
//   - heap: every reachable object has a valid class id, no reachable
//     object carries a forwarding pointer or lives outside the current
//     semi-space (enforced by gc.WalkReachable), and no reachable instance
//     belongs to a renamed old version or to stale class metadata shadowed
//     by a newer registration of the same name;
//   - stacks: no frame executes invalidated compiled code, every pc is in
//     range, no frame's compiled code bakes in offsets of a renamed or
//     unregistered class, and no return barrier survives outside an update;
//   - gauges: the dead-thread error log is bounded, thread states are
//     well-formed, the DSU scratch region is empty between updates, and
//     the NetSim connection/listener tables obey their reaping lifecycle.
func CheckVM(v *vm.VM) error {
	reg, h := v.Reg, v.Heap
	pending := v.UpdatePending()
	// During a lazy-transform drain the renamed old class versions, their
	// UpdatedTo links, the transformer class and the scratch region all
	// legitimately outlive the pause — the drain needs them to resolve
	// old-copy class ids and run transformer methods. The affected gauges
	// relax until the drain finishes; the heap walk stays strict (no
	// REACHABLE object may ever type as a renamed old version — old copies
	// live only in the unreachable scratch region / pair log).
	//
	// A concurrent-relocation drain relaxes the same gauges for the same
	// reason (its finalize owns the metadata cleanup), and needs nothing
	// more from the walk itself: the walk reads every slot through the
	// heap's accessors, so with the load barrier armed each reference it
	// sees is healed to its canonical to-space address before the
	// InCurrentSpace / forwarding-pointer checks run. The walk is therefore
	// exactly as strict mid-drain — it just rides the barrier like any
	// other reader (and, as a side effect, evacuates whatever it visits).
	drain := v.LazyDrainActive() || v.RelocDrainActive()

	// --- registry metadata -------------------------------------------------
	for _, cls := range reg.Classes() {
		if cls.Renamed && !drain {
			return fmt.Errorf("registry: renamed old version %s still registered", cls.Name)
		}
		if !pending && !drain && cls.UpdatedTo != nil {
			return fmt.Errorf("registry: %s has UpdatedTo set outside an update", cls.Name)
		}
		if err := checkClassLayout(cls, len(reg.JTOC)); err != nil {
			return err
		}
	}

	// --- heap walk ---------------------------------------------------------
	err := gc.WalkReachable(h, reg, v, func(a rt.Addr, cls *rt.Class) error {
		if cls == nil {
			return nil // array; structure validated by the walk itself
		}
		if cls.Renamed {
			return fmt.Errorf("heap: reachable old-version instance @%d of %s", a, cls.Name)
		}
		if !pending && cls.UpdatedTo != nil {
			return fmt.Errorf("heap: instance @%d of %s with pending UpdatedTo outside an update", a, cls.Name)
		}
		if reged := reg.LookupClass(cls.Name); reged != nil && reged != cls {
			return fmt.Errorf("heap: instance @%d of %s uses stale metadata shadowed by a newer class of the same name", a, cls.Name)
		}
		// Unregistered but non-renamed classes are instances of deleted
		// classes — legal: they live out their lives on the old code.
		return checkClassLayout(cls, len(reg.JTOC))
	})
	if err != nil {
		return err
	}

	// --- stack walk --------------------------------------------------------
	for _, t := range v.Threads {
		switch t.State {
		case vm.Runnable, vm.Blocked, vm.UpdateWait, vm.Dead:
		default:
			return fmt.Errorf("thread %s: invalid state %v", t.Name, t.State)
		}
		if t.State == vm.Dead {
			continue
		}
		if !pending && t.State == vm.UpdateWait {
			return fmt.Errorf("thread %s parked in UpdateWait with no update pending", t.Name)
		}
		for i, f := range t.Frames {
			cm := f.CM
			if cm == nil {
				return fmt.Errorf("thread %s frame %d: nil compiled method", t.Name, i)
			}
			if cm.Invalid {
				return fmt.Errorf("thread %s frame %d: executing invalidated code of %s", t.Name, i, cm.Method.FullName())
			}
			if f.PC < 0 || f.PC >= len(cm.Code) {
				return fmt.Errorf("thread %s frame %d: pc %d out of range [0,%d) in %s", t.Name, i, f.PC, len(cm.Code), cm.Method.FullName())
			}
			// A frame MAY keep executing a method of a renamed old class:
			// that is precisely the frameFree case — the method's bytecode
			// was unchanged by the update and its compiled code bakes in no
			// stale offsets, so JVOLVE lets the activation run to completion
			// on the old code. What it may NOT do is run invalidated code
			// (checked above) or code with renamed/unregistered layout deps
			// (checked below).
			if !pending && f.Barrier {
				return fmt.Errorf("thread %s frame %d: return barrier survives outside an update (%s)", t.Name, i, cm.Method.FullName())
			}
			for dep := range cm.LayoutDeps {
				if dep.Renamed {
					return fmt.Errorf("thread %s frame %d: %s bakes in offsets of renamed class %s", t.Name, i, cm.Method.FullName(), dep.Name)
				}
				if reg.LookupClass(dep.Name) != dep {
					return fmt.Errorf("thread %s frame %d: %s bakes in offsets of unregistered class %s", t.Name, i, cm.Method.FullName(), dep.Name)
				}
			}
		}
	}

	// --- gauges ------------------------------------------------------------
	if n := len(v.DeadErrors); n > maxDeadErrorsGauge {
		return fmt.Errorf("gauge: DeadErrors log grew to %d (> %d)", n, maxDeadErrorsGauge)
	}
	if h.HasScratch() && !pending && !drain && h.ScratchUsed() != 0 {
		return fmt.Errorf("gauge: scratch region holds %d words outside an update", h.ScratchUsed())
	}
	if err := v.Net.CheckIntegrity(); err != nil {
		return err
	}
	return nil
}

// checkClassLayout validates one class's internal consistency: ref map
// sized to the instance layout, every field offset in range and agreeing
// with the ref map about reference-ness, no two fields sharing an offset,
// and every static slot inside the JTOC.
func checkClassLayout(cls *rt.Class, jtocLen int) error {
	if cls.Size < rt.HeaderWords {
		return fmt.Errorf("class %s: size %d smaller than header", cls.Name, cls.Size)
	}
	if len(cls.RefMap) != cls.Size-rt.HeaderWords {
		return fmt.Errorf("class %s: ref map has %d entries for %d field words", cls.Name, len(cls.RefMap), cls.Size-rt.HeaderWords)
	}
	seen := make(map[int]string, len(cls.Fields))
	for _, f := range cls.Fields {
		if f.Offset < rt.HeaderWords || f.Offset >= cls.Size {
			return fmt.Errorf("class %s: field %s offset %d outside instance [%d,%d)", cls.Name, f.Name, f.Offset, rt.HeaderWords, cls.Size)
		}
		if prev, dup := seen[f.Offset]; dup {
			return fmt.Errorf("class %s: fields %s and %s share offset %d", cls.Name, prev, f.Name, f.Offset)
		}
		seen[f.Offset] = f.Name
		if cls.RefMap[f.Offset-rt.HeaderWords] != f.Desc.IsRef() {
			return fmt.Errorf("class %s: field %s (%s) disagrees with ref map at offset %d", cls.Name, f.Name, f.Desc, f.Offset)
		}
	}
	for _, s := range cls.Statics {
		if s.Slot < 0 || s.Slot >= jtocLen {
			return fmt.Errorf("class %s: static %s slot %d outside JTOC (len %d)", cls.Name, s.Name, s.Slot, jtocLen)
		}
	}
	return nil
}
