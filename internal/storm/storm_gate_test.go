package storm

import (
	"strings"
	"testing"

	"govolve/internal/core"
	"govolve/internal/obs"
)

// TestStormEveryUpdateJudged: gating is always armed in storm (bootVM falls
// back to a private registry), so every engine-resolved update — applied or
// aborted — produces exactly one verdict, visible on the scrape plane when a
// registry is attached.
func TestStormEveryUpdateJudged(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(Config{Seed: 4, Updates: 8, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rep.Applied + rep.Aborted)
	if got := reg.Counter(obs.MGateEvaluations).Value(); got != want {
		t.Fatalf("%d verdicts for %d resolved updates", got, want)
	}
	if got := reg.Counter(obs.MGatePass).Value(); got != want {
		t.Fatalf("all-green storm run passed %d/%d verdicts", got, want)
	}
}

// TestStormGateHaltSurfacesVerdict: a deterministically failing gate (zero
// pause budget) under the halt policy stops the storm at its second update
// request, and the failure report names the violated gate.
func TestStormGateHaltSurfacesVerdict(t *testing.T) {
	_, err := Run(Config{
		Seed: 1, Updates: 5,
		GateSpecs: []obs.GateSpec{
			{Name: "pause-budget", Metric: obs.MPauseTotal, Agg: obs.AggSum, Cmp: obs.CmpLE, Threshold: 0, WallClock: true},
		},
		GatePolicy: core.GateHalt,
	})
	if err == nil {
		t.Fatal("zero pause budget halted nothing")
	}
	for _, want := range []string{"halted by gate policy", "last gate verdict", "FAIL gate=pause-budget"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("failure report missing %q:\n%v", want, err)
		}
	}
}
