package storm

import (
	"fmt"
	"math/rand"
)

// mutate applies one random legal mutation to cur, returning a short
// description, or "" if the chosen mutation kind had no valid target this
// round. base is the model the running program was built from (the "old"
// side of the eventual diff); hierarchy mutations consult it so a batch of
// mutations cannot compose into a super-chain permutation, which JVOLVE
// rejects (upt.ValidateHierarchy).
func mutate(cur, base *model, rng *rand.Rand) string {
	switch rng.Intn(10) {
	case 0, 1: // field add (the most common real-world change)
		c := cur.classes[rng.Intn(len(cur.classes))]
		f := cur.newField(cur.randomDesc(rng), rng.Intn(4) == 0)
		c.fields = append(c.fields, f)
		return fmt.Sprintf("add field %s.%s %s", c.name, f.name, f.desc)

	case 2: // field delete
		c := cur.classes[rng.Intn(len(cur.classes))]
		for off, n := rng.Intn(maxi(len(c.fields), 1)), 0; n < len(c.fields); n++ {
			i := (off + n) % len(c.fields)
			if c.fields[i].name == hubOut {
				continue
			}
			name := c.fields[i].name
			c.fields = append(c.fields[:i], c.fields[i+1:]...)
			return fmt.Sprintf("delete field %s.%s", c.name, name)
		}
		return ""

	case 3: // field type or static-ness change
		c := cur.classes[rng.Intn(len(cur.classes))]
		for off, n := rng.Intn(maxi(len(c.fields), 1)), 0; n < len(c.fields); n++ {
			i := (off + n) % len(c.fields)
			f := &c.fields[i]
			if f.name == hubOut {
				continue
			}
			if rng.Intn(4) == 0 {
				f.static = !f.static
				return fmt.Sprintf("flip static %s.%s", c.name, f.name)
			}
			old := f.desc
			for tries := 0; tries < 8 && f.desc == old; tries++ {
				f.desc = cur.randomDesc(rng)
			}
			if f.desc == old {
				f.desc = "I"
				if old == "I" {
					f.desc = "LObject;"
				}
			}
			return fmt.Sprintf("retype %s.%s %s->%s", c.name, f.name, old, f.desc)
		}
		return ""

	case 4: // method add
		ci := rng.Intn(len(cur.classes))
		c := cur.classes[ci]
		sig := "(I)I"
		if rng.Intn(3) == 0 {
			sig = "(II)I"
		}
		mm := methodModel{name: cur.newMethodName(), sig: sig, bodySeed: rng.Int63()}
		c.methods = append(c.methods, mm)
		cur.addRandomEdges(rng, ci, len(c.methods)-1, 2)
		return fmt.Sprintf("add method %s.%s%s", c.name, mm.name, sig)

	case 5: // method delete (callers self-heal at emission)
		c := cur.classes[rng.Intn(len(cur.classes))]
		for off, n := rng.Intn(maxi(len(c.methods), 1)), 0; n < len(c.methods); n++ {
			i := (off + n) % len(c.methods)
			if c.methods[i].protected {
				continue
			}
			name := c.methods[i].name
			c.methods = append(c.methods[:i], c.methods[i+1:]...)
			return fmt.Sprintf("delete method %s.%s", c.name, name)
		}
		return ""

	case 6: // method signature change (forces a class update; callers adapt)
		c := cur.classes[rng.Intn(len(cur.classes))]
		for off, n := rng.Intn(maxi(len(c.methods), 1)), 0; n < len(c.methods); n++ {
			i := (off + n) % len(c.methods)
			mm := &c.methods[i]
			if mm.protected {
				continue
			}
			if mm.sig == "(I)I" {
				mm.sig = "(II)I"
			} else {
				mm.sig = "(I)I"
			}
			return fmt.Sprintf("resig %s.%s -> %s", c.name, mm.name, mm.sig)
		}
		return ""

	case 7: // method body change (new filler, or edge add/remove)
		ci := rng.Intn(len(cur.classes))
		c := cur.classes[ci]
		if len(c.methods) == 0 {
			return ""
		}
		mi := rng.Intn(len(c.methods))
		mm := &c.methods[mi]
		switch rng.Intn(4) {
		case 0:
			if len(mm.reads)+len(mm.calls) > 0 {
				if len(mm.calls) > 0 && (len(mm.reads) == 0 || rng.Intn(2) == 0) {
					mm.calls = mm.calls[:len(mm.calls)-1]
				} else if len(mm.reads) > 0 {
					mm.reads = mm.reads[:len(mm.reads)-1]
				}
				return fmt.Sprintf("drop edge in %s.%s", c.name, mm.name)
			}
			fallthrough
		case 1:
			cur.addRandomEdges(rng, ci, mi, 1)
			return fmt.Sprintf("add edge in %s.%s", c.name, mm.name)
		default:
			mm.bodySeed = rng.Int63()
			return fmt.Sprintf("rebody %s.%s", c.name, mm.name)
		}

	case 8: // class add (sometimes as a subclass: hierarchy growth)
		super := "Object"
		if rng.Intn(2) == 0 {
			super = cur.classes[rng.Intn(len(cur.classes))].name
		}
		c := &classModel{name: cur.newClassName(), super: super}
		for j, nf := 0, 1+rng.Intn(2); j < nf; j++ {
			c.fields = append(c.fields, cur.newField(cur.randomDesc(rng), false))
		}
		c.fields = append(c.fields, cur.newField("I", true))
		c.methods = append(c.methods, methodModel{
			name: cur.newMethodName(), sig: "(I)I", bodySeed: rng.Int63(),
		})
		cur.classes = append(cur.classes, c)
		// Wire it into the call graph from some earlier class.
		ci := rng.Intn(len(cur.classes) - 1)
		if len(cur.classes[ci].methods) > 0 {
			mi := rng.Intn(len(cur.classes[ci].methods))
			cur.classes[ci].methods[mi].calls = append(
				cur.classes[ci].methods[mi].calls, callRef{c.name, c.methods[0].name})
		}
		return fmt.Sprintf("add class %s extends %s", c.name, super)

	default: // class delete (leaves only) or reparent
		if rng.Intn(2) == 0 {
			for off, n := rng.Intn(len(cur.classes)), 0; n < len(cur.classes); n++ {
				i := (off + n) % len(cur.classes)
				c := cur.classes[i]
				if c.name == hubClass || cur.hasSubclasses(c.name) {
					continue
				}
				name := c.name
				cur.classes = append(cur.classes[:i], cur.classes[i+1:]...)
				// References to the deleted class lose their target type —
				// exactly what UPT does to old flat defs (rewriteDeletedDesc).
				for _, oc := range cur.classes {
					for j := range oc.fields {
						if oc.fields[j].desc == "L"+name+";" {
							oc.fields[j].desc = "LObject;"
						}
					}
				}
				return fmt.Sprintf("delete class %s", name)
			}
			return ""
		}
		// Reparent: move a class under a new super that is a descendant of
		// the class in neither the base nor the current model (JVOLVE
		// forbids super-chain permutations).
		for off, n := rng.Intn(len(cur.classes)), 0; n < len(cur.classes); n++ {
			i := (off + n) % len(cur.classes)
			c := cur.classes[i]
			if c.name == hubClass {
				continue
			}
			super := "Object"
			if rng.Intn(2) == 0 {
				super = cur.classes[rng.Intn(len(cur.classes))].name
			}
			if super == c.name || super == c.super ||
				cur.descendantOf(super, c.name) || base.descendantOf(super, c.name) {
				continue
			}
			old := c.super
			c.super = super
			return fmt.Sprintf("reparent %s: %s -> %s", c.name, old, super)
		}
		return ""
	}
}

// mutateBatch applies between 1 and n mutations, retrying kinds that found
// no valid target, and returns the descriptions of those that applied.
func mutateBatch(cur, base *model, rng *rand.Rand, n int) []string {
	want := 1 + rng.Intn(n)
	var out []string
	for tries := 0; len(out) < want && tries < 10*want; tries++ {
		if d := mutate(cur, base, rng); d != "" {
			out = append(out, d)
		}
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
