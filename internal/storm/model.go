// Package storm is a seeded, deterministic update-storm harness for the
// DSU engine. It generates random class hierarchies and random *legal*
// update diffs, pushes long sequences of them through the real pipeline —
// UPT diff → spec → core coordinator → DSU GC → transformers — against a
// VM running generated workload threads (a loop-pinned spinner and a
// thread blocked in accept, so return barriers and OSR actually fire), and
// after every update runs a whole-VM invariant checker: full heap walk,
// transformer oracle against a Go-side shadow model of the object graph,
// stack walk, and bounded-gauge checks. Everything is reproducible from a
// single seed, which every failure message carries.
package storm

import (
	"fmt"
	"math/rand"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
)

// Names the model reserves. G0 is the stable hub class: it always exists,
// always has the protected entry method the workload threads call, and
// carries the probe-result static the snap methods write (excluded from
// shadow tracking because guest code writes it).
const (
	hubClass   = "G0"
	hubEntry   = "entry"
	hubOut     = "out"
	stormPort  = 7070
	loopIters  = 6
	listBound  = 24
)

// fieldModel is one declared field of a generated class. Field names are
// globally unique (f<N>), so name matching across hierarchy levels — the
// rule UPT's default transformers use — never aliases unrelated fields.
type fieldModel struct {
	name   string
	desc   string // "I", "LObject;", or "L<generated class>;"
	static bool
}

// callRef is a static call edge; fieldRef is a getstatic read edge. Both
// are validated at emission time (the target may have been mutated away),
// so bodies self-heal: an edge that loses its target simply stops being
// emitted, which UPT classifies as a method body change.
type callRef struct{ class, method string }
type fieldRef struct{ class, field string }

// methodModel is one generated static work method. bodySeed drives the
// arithmetic filler; reads and calls are the cross-class edges that give
// compiled callers layout dependencies (category-2 fodder).
type methodModel struct {
	name      string
	sig       string // "(I)I" or "(II)I"
	protected bool   // G0.entry: never deleted, never sig-changed
	loop      bool   // wrap the body in a counted loop (backedge yields)
	bodySeed  int64
	reads     []fieldRef
	calls     []callRef
}

// classModel is one generated class.
type classModel struct {
	name    string
	super   string // "Object" or another generated class
	fields  []fieldModel
	methods []methodModel
}

// model is a whole generated program version. classes is ordered by
// creation; call edges only point from lower to higher class index, so the
// call graph is a DAG and generated code cannot recurse.
type model struct {
	classes   []*classModel
	nextField int
	nextClass int
	nextMeth  int
}

func (m *model) find(name string) (*classModel, int) {
	for i, c := range m.classes {
		if c.name == name {
			return c, i
		}
	}
	return nil, -1
}

func (m *model) fieldOf(class, field string) *fieldModel {
	c, _ := m.find(class)
	if c == nil {
		return nil
	}
	for i := range c.fields {
		if c.fields[i].name == field {
			return &c.fields[i]
		}
	}
	return nil
}

func (m *model) methodOf(class, method string) *methodModel {
	c, _ := m.find(class)
	if c == nil {
		return nil
	}
	for i := range c.methods {
		if c.methods[i].name == method {
			return &c.methods[i]
		}
	}
	return nil
}

// descendantOf reports whether sub transitively extends anc in the model.
func (m *model) descendantOf(sub, anc string) bool {
	for cur := sub; cur != "" && cur != "Object"; {
		if cur == anc {
			return true
		}
		c, _ := m.find(cur)
		if c == nil {
			return false
		}
		cur = c.super
	}
	return anc == "Object"
}

// flatInstanceFields returns the flattened instance layout of class: the
// non-static fields of its whole super chain, root-first, in declaration
// order — the model-side equivalent of the registry's flattened layout and
// of UPT's instanceLayout, so shadow-model indices line up with rt.Class
// field slots one-for-one.
func (m *model) flatInstanceFields(class string) []fieldModel {
	var chain []*classModel
	for cur := class; cur != "" && cur != "Object"; {
		c, _ := m.find(cur)
		if c == nil {
			break
		}
		chain = append(chain, c)
		cur = c.super
	}
	var out []fieldModel
	for i := len(chain) - 1; i >= 0; i-- {
		for _, f := range chain[i].fields {
			if !f.static {
				out = append(out, f)
			}
		}
	}
	return out
}

// hasSubclasses reports whether any model class extends name.
func (m *model) hasSubclasses(name string) bool {
	for _, c := range m.classes {
		if c.super == name {
			return true
		}
	}
	return false
}

func (m *model) clone() *model {
	n := &model{nextField: m.nextField, nextClass: m.nextClass, nextMeth: m.nextMeth}
	for _, c := range m.classes {
		cc := &classModel{name: c.name, super: c.super}
		cc.fields = append([]fieldModel(nil), c.fields...)
		for _, mm := range c.methods {
			nm := mm
			nm.reads = append([]fieldRef(nil), mm.reads...)
			nm.calls = append([]callRef(nil), mm.calls...)
			cc.methods = append(cc.methods, nm)
		}
		n.classes = append(n.classes, cc)
	}
	return n
}

// newField / newMethod / newClassName mint globally-unique names.
func (m *model) newField(desc string, static bool) fieldModel {
	m.nextField++
	return fieldModel{name: fmt.Sprintf("f%d", m.nextField), desc: desc, static: static}
}

func (m *model) newMethodName() string {
	m.nextMeth++
	return fmt.Sprintf("w%d", m.nextMeth)
}

func (m *model) newClassName() string {
	m.nextClass++
	return fmt.Sprintf("C%d", m.nextClass)
}

// randomDesc picks a field type: mostly ints, sometimes refs (untyped
// Object or a reference to an existing generated class).
func (m *model) randomDesc(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return "LObject;"
	case 1:
		return "L" + m.classes[rng.Intn(len(m.classes))].name + ";"
	default:
		return "I"
	}
}

// newModel builds the initial program model: the hub class G0 plus
// nclasses generated classes, each with a few fields and work methods.
func newModel(rng *rand.Rand, nclasses int) *model {
	m := &model{}
	hub := &classModel{name: hubClass, super: "Object"}
	hub.fields = append(hub.fields, fieldModel{name: hubOut, desc: "I", static: true})
	m.classes = append(m.classes, hub)

	for i := 0; i < nclasses; i++ {
		c := &classModel{name: m.newClassName(), super: "Object"}
		if i > 0 && rng.Intn(3) == 0 {
			// Sometimes extend an earlier generated class.
			c.super = m.classes[1+rng.Intn(i)].name
		}
		nf := 1 + rng.Intn(3)
		for j := 0; j < nf; j++ {
			c.fields = append(c.fields, m.newField(m.randomDesc(rng), false))
		}
		ns := rng.Intn(2) + 1
		for j := 0; j < ns; j++ {
			c.fields = append(c.fields, m.newField("I", true))
		}
		nw := 1 + rng.Intn(2)
		for j := 0; j < nw; j++ {
			c.methods = append(c.methods, methodModel{
				name: m.newMethodName(), sig: "(I)I", bodySeed: rng.Int63(),
			})
		}
		m.classes = append(m.classes, c)
	}

	// The hub's protected entry method: a counted loop whose body calls
	// into the generated classes; every workload thread funnels through it.
	entry := methodModel{
		name: hubEntry, sig: "(I)I", protected: true, loop: true, bodySeed: rng.Int63(),
	}
	m.classes[0].methods = append(m.classes[0].methods, entry)
	m.addRandomEdges(rng, 0, len(m.classes[0].methods)-1, 3)

	// Sprinkle edges between the generated classes (DAG order: lower class
	// index may only call higher).
	for ci := 1; ci < len(m.classes); ci++ {
		for mi := range m.classes[ci].methods {
			m.addRandomEdges(rng, ci, mi, 2)
		}
	}
	return m
}

// addRandomEdges adds up to n random read/call edges from method mi of
// class ci, respecting the call DAG (calls only to higher class indexes).
func (m *model) addRandomEdges(rng *rand.Rand, ci, mi, n int) {
	mm := &m.classes[ci].methods[mi]
	for k := 0; k < n; k++ {
		if rng.Intn(2) == 0 {
			// Read edge: a static int field of any generated class.
			tc := m.classes[rng.Intn(len(m.classes))]
			for _, f := range tc.fields {
				if f.static && f.desc == "I" && f.name != hubOut {
					mm.reads = append(mm.reads, fieldRef{tc.name, f.name})
					break
				}
			}
		} else if ci+1 < len(m.classes) {
			// Call edge: a work method of a strictly-later class.
			tc := m.classes[ci+1+rng.Intn(len(m.classes)-ci-1)]
			for _, tm := range tc.methods {
				if !tm.protected {
					mm.calls = append(mm.calls, callRef{tc.name, tm.name})
					break
				}
			}
		}
	}
}

// --- program emission -------------------------------------------------------

// program builds the classfile.Program for the model: every generated
// class (constructor, probe, snap, work methods) plus the fixed workload
// classes. Emission is a pure function of the model, so two builds of the
// same model produce bytecode-identical programs (what UPT's diff relies
// on to see only the mutated parts).
func (m *model) program() (*classfile.Program, error) {
	p, err := classfile.NewProgram()
	if err != nil {
		return nil, err
	}
	for _, c := range m.classes {
		def, err := m.buildClass(c)
		if err != nil {
			return nil, err
		}
		if err := p.Add(def); err != nil {
			return nil, err
		}
	}
	for _, def := range workloadClasses() {
		if err := p.Add(def); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (m *model) buildClass(c *classModel) (*classfile.Class, error) {
	b := classfile.NewClass(c.name, c.super)
	for _, f := range c.fields {
		b.FieldSpec(classfile.Field{Name: f.name, Desc: classfile.Desc(f.desc), Static: f.static})
	}

	// <init>()V: chain to super.
	b = b.Method("<init>", "()V").
		Load(0).Special(c.super, "<init>", "()V").Ret().Done()

	// probe()I: super chain sum of all declared int instance fields. This
	// is the bytecode half of the transformer oracle — its result must
	// match the Go-side shadow sum after every update.
	pb := b.Method("probe", "()I")
	if c.super != "Object" {
		pb.Load(0).Special(c.super, "probe", "()I")
	} else {
		pb.Const(0)
	}
	for _, f := range c.fields {
		if !f.static && f.desc == "I" {
			pb.Load(0).GetField(c.name, f.name, "I").Op(bytecode.ADD)
		}
	}
	b = pb.Ret().Done()

	// snap(LC;)V: run probe through real dispatch and park the result in
	// G0.out, where the Go driver can read it from the JTOC.
	b = b.StaticMethod("snap", classfile.Sig("(L"+c.name+";)V")).
		Load(0).Virtual(c.name, "probe", "()I").
		PutStatic(hubClass, hubOut, "I").Ret().Done()

	for i := range c.methods {
		mb := b.StaticMethod(c.methods[i].name, classfile.Sig(c.methods[i].sig))
		m.emitBody(mb, &c.methods[i])
		b = mb.Done()
	}
	return b.Build()
}

// emitBody writes a work method: an int expression over the method's
// argument, bodySeed-driven constants, valid read edges, and valid call
// edges. Loop methods wrap the expression in a counted loop so threads
// park at backedge yield points inside the frame.
func (m *model) emitBody(mb *classfile.MethodBuilder, mm *methodModel) {
	ops := rand.New(rand.NewSource(mm.bodySeed))
	nargs := 1
	if mm.sig == "(II)I" {
		nargs = 2
	}
	combine := func() {
		switch ops.Intn(3) {
		case 0:
			mb.Op(bytecode.ADD)
		case 1:
			mb.Op(bytecode.SUB)
		default:
			mb.Op(bytecode.MUL)
		}
	}
	expr := func() {
		// Seed-driven arithmetic filler.
		n := 1 + ops.Intn(2)
		for i := 0; i < n; i++ {
			if ops.Intn(2) == 0 {
				mb.Const(int64(ops.Intn(97) + 1))
			} else {
				mb.Load(ops.Intn(nargs))
			}
			combine()
		}
		// Read edges that still resolve to a static int field.
		for _, r := range mm.reads {
			f := m.fieldOf(r.class, r.field)
			if f == nil || !f.static || f.desc != "I" {
				continue
			}
			mb.GetStatic(r.class, r.field, "I")
			combine()
		}
		// Call edges that still resolve, adapting to the callee's current
		// signature.
		for _, cr := range mm.calls {
			tm := m.methodOf(cr.class, cr.method)
			if tm == nil {
				continue
			}
			mb.Load(0)
			if tm.sig == "(II)I" {
				mb.Const(int64(ops.Intn(13) + 1))
			}
			mb.Invoke(bytecode.INVOKESTATIC, cr.class, cr.method, classfile.Sig(tm.sig))
			combine()
		}
	}

	if mm.loop {
		acc, i := nargs, nargs+1
		mb.Load(0).Store(acc)
		mb.Const(0).Store(i)
		mb.Label("loop")
		mb.Load(i).Const(loopIters).Branch(bytecode.IF_ICMPGE, "done")
		mb.Load(acc)
		expr()
		mb.Store(acc)
		mb.Load(i).Const(1).Op(bytecode.ADD).Store(i)
		mb.Branch(bytecode.GOTO, "loop")
		mb.Label("done")
		mb.Load(acc).Ret()
		return
	}
	mb.Load(0)
	expr()
	mb.Ret()
}

// entryCostBudget bounds the estimated dynamic instruction cost of one
// G0.entry(I)I call. The call graph is a DAG, but mutations accumulate
// duplicate call edges and added classes deepen it, so the number of call
// paths — and with it entry's dynamic cost — can grow exponentially along
// a long version chain. A DSU safe-point attempt runs once per scheduling
// slice (vm.Quantum instructions), and a return barrier installed on an
// entry frame only fires when that call finishes — so once one entry call
// outlasts MaxAttempts slices, no safe-point search can succeed and every
// update aborts. The chain generator (NextVersion) rejects mutation
// batches that push the estimate past this budget, keeping the barrier
// latency a small fraction of the default 400-attempt search.
const entryCostBudget = 8192

// entryCost estimates the dynamic instructions of one G0.entry call.
func (m *model) entryCost() int64 {
	return m.dynamicCost(make(map[string]int64), hubClass, hubEntry)
}

// dynamicCost estimates the instructions one call of (cls, name) executes,
// following call edges exactly as emitBody resolves them (missing targets
// cost nothing — the emitter skips them too). Memoized over the DAG; a
// cycle, which emitted code would turn into unbounded recursion, returns a
// poisoned cost so the caller rejects the batch.
func (m *model) dynamicCost(memo map[string]int64, cls, name string) int64 {
	key := cls + "." + name
	if c, ok := memo[key]; ok {
		if c < 0 {
			return entryCostBudget + 1 // cycle: poison without recursing
		}
		return c
	}
	mm := m.methodOf(cls, name)
	if mm == nil {
		return 0
	}
	memo[key] = -1 // visiting
	var body int64 = 8 // prologue, filler arithmetic, return
	for _, r := range mm.reads {
		if f := m.fieldOf(r.class, r.field); f != nil && f.static && f.desc == "I" {
			body += 3
		}
	}
	for _, cr := range mm.calls {
		if tm := m.methodOf(cr.class, cr.method); tm != nil {
			body += 5 + m.dynamicCost(memo, cr.class, cr.method)
		}
	}
	cost := body
	if mm.loop {
		cost = 4 + loopIters*(body+4)
	}
	memo[key] = cost
	return cost
}

// workloadClasses builds the fixed (never-mutated) workload: a main class
// that binds the storm port and spawns the threads, a spinner pinned in an
// infinite loop (GC churn through a bounded Node list, constant calls into
// G0.entry), and an acceptor that blocks in Net.accept — the two stack
// shapes that force return barriers and OSR during updates.
func workloadClasses() []*classfile.Class {
	node := classfile.NewClass("Node", "Object").
		Field("next", "LNode;").
		Field("val", "I").
		Method("<init>", "()V").
		Load(0).Special("Object", "<init>", "()V").Ret().Done().
		MustBuild()

	sb := classfile.NewClass("Spinner", "Object").
		Method("<init>", "()V").
		Load(0).Special("Object", "<init>", "()V").Ret().Done()
	// run()V locals: 0=this 1=head 2=acc 3=n
	spinner := sb.Method("run", "()V").
		Null().Store(1).
		Const(0).Store(2).
		Const(0).Store(3).
		Label("loop").
		New("Node").Op(bytecode.DUP).Special("Node", "<init>", "()V").
		Op(bytecode.DUP).Load(1).PutField("Node", "next", "LNode;").
		Op(bytecode.DUP).Load(3).PutField("Node", "val", "I").
		Store(1).
		Load(2).Static(hubClass, hubEntry, "(I)I").Store(2).
		Load(3).Const(1).Op(bytecode.ADD).Store(3).
		Load(3).Const(listBound).Branch(bytecode.IF_ICMPLT, "keep").
		Null().Store(1).
		Const(0).Store(3).
		Label("keep").
		Branch(bytecode.GOTO, "loop").
		Done().MustBuild()

	ab := classfile.NewClass("Acceptor", "Object").
		Method("<init>", "()V").
		Load(0).Special("Object", "<init>", "()V").Ret().Done()
	// run()V locals: 0=this 1=id 2=line
	acceptor := ab.Method("run", "()V").
		Label("loop").
		Const(stormPort).Static("Net", "accept", "(I)I").Store(1).
		Load(1).Const(0).Branch(bytecode.IF_ICMPLT, "closed").
		Load(1).Static("Net", "recvLine", "(I)LString;").Store(2).
		Load(2).Branch(bytecode.IFNULL, "fin").
		Load(1).Load(2).Static("Net", "send", "(ILString;)V").
		Label("fin").
		Load(1).Static("Net", "close", "(I)V").
		Const(5).Static(hubClass, hubEntry, "(I)I").Op(bytecode.POP).
		Branch(bytecode.GOTO, "loop").
		Label("closed").
		Ret().Done().MustBuild()

	main := classfile.NewClass("StormMain", "Object").
		StaticMethod("main", "()V").
		Const(stormPort).Static("Net", "listen", "(I)I").Op(bytecode.POP).
		New("Spinner").Op(bytecode.DUP).Special("Spinner", "<init>", "()V").
		Static("Thread", "spawn", "(LObject;)V").
		New("Acceptor").Op(bytecode.DUP).Special("Acceptor", "<init>", "()V").
		Static("Thread", "spawn", "(LObject;)V").
		Ret().Done().MustBuild()

	return []*classfile.Class{node, spinner, acceptor, main}
}
