package storm

import (
	"io"
	"math/rand"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/rt"
	"govolve/internal/vm"
)

// Driver drives a live VM through an externally generated version chain.
// It is the storm runner with generation inverted: storm.Run mutates its
// own model one step from the running version, while a Driver is handed
// pre-built StepSpecs (see NextVersion) and supplies everything else — the
// booted VM with live workload threads, the workload eras between updates,
// the Go-side shadow model advanced through every applied transformation,
// and the full oracle sweep (storm.CheckVM plus specimen/static/array/probe
// checks). The stream replayer composes Drivers with chains to exercise
// long multi-release update sequences under hostile interleavings.
type Driver struct {
	r *runner
}

// DriverConfig tunes one chain replay. The zero value gets the same
// defaults as storm.Config; the chain seed doubles as the scheduling seed
// for the driver's own rng (workload eras, pokes, traffic), so a chain
// replay is deterministic end to end given a deterministic engine mode.
type DriverConfig struct {
	Seed      int64
	Specimens int // tracked live instances per generated class (default 3)

	HeapWords    int // semi-space words (default 1<<16)
	ScratchWords int // DSU scratch region words (default 0)
	MaxAttempts  int // safe-point attempts before abort (default 400)
	FastDefaults bool
	OSROpt       bool
	Workers         int  // parallel copy/scan width (<=1 serial)
	ConcurrentMark  bool // SATB concurrent discovery outside the pause
	ConcurrentReloc bool // self-healing concurrent relocation drain
	Lazy            bool // lazy per-object transformation behind the read barrier

	// EventTail is the flight-recorder tail embedded in failures (default
	// 40; negative disables the recorder).
	EventTail int
	// Metrics, if set, attaches the registry to the VM so the engine and
	// the stream obs plane publish into it. When nil the driver still arms
	// gating against a private registry (see Config.GateSpecs).
	Metrics *obs.Registry

	// GateSpecs / GatePolicy configure the engine's per-update health gates
	// (nil specs = obs.DefaultGateSpecs; zero policy = core.GateObserve).
	GateSpecs  []obs.GateSpec
	GatePolicy core.GatePolicy

	Log io.Writer
}

// NewDriver boots a VM at v0 with the storm workload (spinner, acceptor,
// specimens, arrays) and the whole-VM checker armed on Engine.AfterUpdate.
// The initial oracle sweep runs before it returns, so a non-nil Driver
// starts from a verified state.
func NewDriver(cfg DriverConfig, v0 Version) (*Driver, error) {
	c := Config{
		Seed:            cfg.Seed,
		Specimens:       cfg.Specimens,
		HeapWords:       cfg.HeapWords,
		ScratchWords:    cfg.ScratchWords,
		MaxAttempts:     cfg.MaxAttempts,
		FastDefaults:    cfg.FastDefaults,
		OSROpt:          cfg.OSROpt,
		Workers:         cfg.Workers,
		ConcurrentMark:  cfg.ConcurrentMark,
		ConcurrentReloc: cfg.ConcurrentReloc,
		Lazy:            cfg.Lazy,
		EventTail:       cfg.EventTail,
		GateSpecs:       cfg.GateSpecs,
		GatePolicy:      cfg.GatePolicy,
		Log:             cfg.Log,
	}.withDefaults()
	r := &runner{
		cfg:   c,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		rep:   &Report{Seed: cfg.Seed},
		model: v0.model,
		prog:  v0.prog,
	}
	if err := r.bootVM(cfg.Metrics); err != nil {
		return nil, err
	}
	return &Driver{r: r}, nil
}

// VM returns the live VM.
func (d *Driver) VM() *vm.VM { return d.r.v }

// Engine returns the DSU engine.
func (d *Driver) Engine() *core.Engine { return d.r.eng }

// Report returns the running tally (updated in place).
func (d *Driver) Report() *Report {
	d.r.rep.Specs = len(d.r.specs)
	return d.r.rep
}

// Era runs one workload era between updates: scheduler slices, client
// traffic against the acceptor, shadow-mirrored pokes, and occasionally a
// plain collection followed by the full oracle sweep.
func (d *Driver) Era() error { return d.r.era() }

// ApplyStep drives one pre-generated chain step through the engine against
// the live VM: request, step the scheduler (with mid-update traffic) until
// the update resolves, then on Applied advance the shadow model and top up
// specimens for any added classes. The AfterUpdate whole-VM sweep runs at
// the resolving safe point; its verdict is returned here. Callers choose
// the post-step oracle depth themselves (CheckFull or CheckLight) — unlike
// storm.Run, no full sweep is implied, so a replayer can deliberately
// leave a lazy drain half-finished before the next step.
//
// ApplyOpts tunes one ApplyStep call.
type ApplyOpts struct {
	// MaxAttempts overrides the config's safe-point attempt bound for this
	// request (0 = config default). Replayers escalate it across retries,
	// because unlike storm.Run a chain cannot abandon a hard step for a
	// fresh mutation batch.
	MaxAttempts int
	// Quiesce closes the open client connections before the request and
	// stops injecting traffic while the update is in flight, so the
	// acceptor parks in Net.accept instead of cycling through the hub
	// method. With only the spinner left visiting a changed hub method,
	// the return barrier converges where two alternating threads can
	// ping-pong the safe-point search forever — the retry posture after a
	// step aborts under full load.
	Quiesce bool
}

// An Aborted outcome is not an error: the chain did not advance, and the
// same StepSpec may be retried after another era.
func (d *Driver) ApplyStep(st *StepSpec, opts ApplyOpts) (*core.Result, error) {
	r := d.r
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = r.cfg.MaxAttempts
	}
	if opts.Quiesce {
		for _, id := range r.conns {
			r.v.Net.ClientClose(id)
		}
		r.conns = r.conns[:0]
	}
	pending, err := r.eng.RequestUpdate(st.Spec, core.Options{
		Timeout:      time.Hour, // determinism: only MaxAttempts aborts
		MaxAttempts:  maxAttempts,
		FastDefaults: r.cfg.FastDefaults,
		OSROpt:       r.cfg.OSROpt,
	})
	if err != nil {
		return nil, r.failf("update rejected by verifier: %v", err)
	}
	for i := 0; !pending.Done(); i++ {
		if i > 50_000_000 {
			return nil, r.failf("update did not resolve")
		}
		r.v.Step(1)
		r.rep.Steps++
		if !opts.Quiesce && i%64 == 63 {
			r.traffic() // keep the acceptor waking up mid-update
		}
	}

	res := pending.Result()
	switch res.Outcome {
	case core.Applied:
		r.rep.Applied++
		r.updateIdx++
		r.shadowApply(st.Spec, st.Next.model)
		r.model = st.Next.model
		r.prog = st.Next.prog
		r.syncStatics()
		if err := r.ensureSpecimens(); err != nil {
			return res, err
		}
	case core.Aborted:
		r.rep.Aborted++
	default:
		return res, r.failf("update failed mid-flight: %v", res.Err)
	}
	if r.hookErr != nil {
		err := r.failf("post-update hook: %v", r.hookErr)
		r.hookErr = nil
		return res, err
	}
	return res, nil
}

// CheckFull runs the complete oracle sweep: whole-VM invariants plus the
// shadow-model comparison over every specimen, static and array, and the
// bytecode probe cross-check. In lazy mode it probes first (firing the
// read barrier through real dispatch), force-drains the residue, and only
// then does the raw-heap oracle reads — so a full check always ends with
// an empty drain backlog.
func (d *Driver) CheckFull() error { return d.r.checkAll() }

// CheckLight runs only the whole-VM invariant sweep (storm.CheckVM). It is
// drain-aware, so it is the correct per-step check while a lazy drain is
// deliberately left in flight.
func (d *Driver) CheckLight() error {
	if err := CheckVM(d.r.v); err != nil {
		return d.r.failf("invariant: %v", err)
	}
	d.r.rep.Checks++
	return nil
}

// ForceDrain force-completes any in-flight lazy drain (no-op otherwise)
// and surfaces the first transformer error the drain recorded.
func (d *Driver) ForceDrain() error {
	if err := d.r.eng.ForceDrain(); err != nil {
		return d.r.failf("lazy drain: %v", err)
	}
	return nil
}

// TouchSpecimens fires the lazy read barrier on up to n live specimens by
// running their snap probes through real bytecode — a partial drain that
// leaves the rest of the backlog tagged. It is the hostile-interleaving
// primitive: touch a few objects, then request the next update while the
// drain is still active. Returns how many specimens were touched.
func (d *Driver) TouchSpecimens(n int) (int, error) {
	r := d.r
	touched := 0
	for _, s := range r.specs {
		if touched >= n {
			break
		}
		if s.deleted {
			continue
		}
		cls := r.v.Reg.LookupClass(s.class)
		if cls == nil {
			continue
		}
		m := cls.Method("snap", classfile.Sig("(L"+s.class+";)V"))
		if m == nil {
			continue
		}
		if err := r.v.RunSynchronous("stream-touch", m, []rt.Value{rt.RefVal(r.addrOf(s.handle))}); err != nil {
			return touched, r.failf("touch of %s: %v", s.class, err)
		}
		touched++
	}
	return touched, nil
}

// Failf formats a failure with the driver's reproducing seed, current
// update index and flight-recorder tail — the same shape storm.Run errors
// carry — so chain replayers report violations identically.
func (d *Driver) Failf(format string, args ...any) error {
	return d.r.failf(format, args...)
}
