package jit

import (
	"testing"

	"govolve/internal/bytecode"
	"govolve/internal/rt"
)

func TestOptPCMapShape(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Caller", "addTiny", "(LPair;)I")
	cm, err := c.Compile(m, rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	if cm.PCMap == nil || len(cm.PCMap) != len(cm.Code) {
		t.Fatalf("PCMap len %d, code len %d", len(cm.PCMap), len(cm.Code))
	}
	inInline := false
	sawNeg := false
	for pc, ins := range cm.Code {
		orig := cm.PCMap[pc]
		switch ins.Op {
		case bytecode.ENTERINL_R:
			if orig < 0 || orig >= len(m.Def.Code) {
				t.Fatalf("ENTERINL maps to %d", orig)
			}
			// The prologue maps to the original call site.
			if m.Def.Code[orig].Op != bytecode.INVOKESPECIAL {
				t.Fatalf("ENTERINL maps to %v, want the call", m.Def.Code[orig].Op)
			}
			inInline = true
		case bytecode.LEAVEINL_R:
			inInline = false
			if orig < 0 {
				t.Fatal("LEAVEINL unmapped")
			}
		default:
			if inInline {
				if orig != -1 {
					t.Fatalf("pc %d inside inline region maps to %d, want -1", pc, orig)
				}
				sawNeg = true
			} else if orig < 0 || orig >= len(m.Def.Code) {
				t.Fatalf("pc %d outside inline maps to %d", pc, orig)
			}
		}
	}
	if !sawNeg {
		t.Fatal("no inlined region found in opt code")
	}
	// Mapped instructions outside inline regions must equal the original
	// instruction's opcode (modulo resolution and folding NOPs).
	for pc, orig := range cm.PCMap {
		if orig < 0 {
			continue
		}
		op := cm.Code[pc].Op
		if op == bytecode.ENTERINL_R || op == bytecode.LEAVEINL_R ||
			op == bytecode.NOP || op == bytecode.CONST_R {
			continue // markers and folded constants
		}
		if op == bytecode.FPAD {
			continue // pad slot of a fused pair; deopt never lands here
		}
		oop := m.Def.Code[orig].Op
		if op.IsFused() {
			// A fused pc deopts to its FIRST constituent's original pc.
			firstOf := map[bytecode.Op]bytecode.Op{
				bytecode.FCONSTARITH:    bytecode.CONST,
				bytecode.FCONSTARITH2:   bytecode.CONST,
				bytecode.FCONSTCMPBR:    bytecode.CONST,
				bytecode.FLOADLOAD:      bytecode.LOAD,
				bytecode.FLOADLOADARITH: bytecode.LOAD,
				bytecode.FLOADCMPBR:     bytecode.LOAD,
				bytecode.FLOADINVOKE:    bytecode.LOAD,
				bytecode.FSTORELOAD:     bytecode.STORE,
				bytecode.FSTOREGOTO:     bytecode.STORE,
				bytecode.FGETGET:        bytecode.GETFIELD,
			}
			if want, ok := firstOf[op]; !ok || oop != want {
				t.Fatalf("pc %d: fused %v maps to original %v, want its first constituent", pc, op, oop)
			}
			continue
		}
		resolvedPairs := map[bytecode.Op]bytecode.Op{
			bytecode.GETFIELD_R:   bytecode.GETFIELD,
			bytecode.PUTFIELD_R:   bytecode.PUTFIELD,
			bytecode.GETSTATIC_R:  bytecode.GETSTATIC,
			bytecode.PUTSTATIC_R:  bytecode.PUTSTATIC,
			bytecode.NEW_R:        bytecode.NEW,
			bytecode.LDC_R:        bytecode.LDC,
			bytecode.INVOKEVIRT_R: bytecode.INVOKEVIRTUAL,
			bytecode.INVOKESTAT_R: bytecode.INVOKESTATIC,
			bytecode.INVOKESPEC_R: bytecode.INVOKESPECIAL,
			bytecode.INVOKENAT_R:  bytecode.INVOKESTATIC,
			bytecode.NEWARRAY_R:   bytecode.NEWARRAY,
			bytecode.INSTOF_R:     bytecode.INSTANCEOF,
			bytecode.CHECKCAST_R:  bytecode.CHECKCAST,
		}
		if want, ok := resolvedPairs[op]; ok {
			if oop != want {
				t.Fatalf("pc %d: opt %v maps to original %v", pc, op, oop)
			}
		} else if op != oop {
			t.Fatalf("pc %d: opt %v maps to original %v", pc, op, oop)
		}
	}
}

func TestBaseHasNoPCMap(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Pair", "sum", "()I")
	cm, err := c.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	if cm.PCMap != nil {
		t.Fatal("base code carries a PCMap")
	}
}
