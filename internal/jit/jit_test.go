package jit

import (
	"testing"

	"govolve/internal/asm"
	"govolve/internal/bytecode"
	"govolve/internal/classfile"
	"govolve/internal/rt"
)

const src = `
class Object {
  method <init>()V {
    return
  }
}
class Pair {
  field a I
  field b LPair;
  static field shared I

  method <init>()V {
    load 0
    invokespecial Object.<init>()V
    return
  }
  method sum()I {
    load 0
    getfield Pair.a I
    load 0
    getfield Pair.b LPair;
    ifnull justA
    load 0
    getfield Pair.b LPair;
    getfield Pair.a I
    add
    return
  justA:
    return
  }
  method tiny()I {
    load 0
    getfield Pair.a I
    const 1
    add
    return
  }
}
class Caller {
  static method addTiny(LPair;)I {
    load 0
    invokespecial Pair.tiny()I
    return
  }
  static method fold()I {
    const 3
    const 4
    add
    const 10
    mul
    return
  }
  static method useStatic()I {
    getstatic Pair.shared I
    return
  }
  static method dispatch(LPair;)I {
    load 0
    invokevirtual Pair.sum()I
    return
  }
}
`

func setup(t *testing.T) (*rt.Registry, *Compiler) {
	t.Helper()
	prog, err := asm.AssembleProgram("jit.jva", src)
	if err != nil {
		t.Fatal(err)
	}
	reg := rt.NewRegistry()
	if _, err := reg.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	return reg, New(reg)
}

func method(t *testing.T, reg *rt.Registry, cls, name string, sig classfile.Sig) *rt.Method {
	t.Helper()
	c := reg.LookupClass(cls)
	if c == nil {
		t.Fatalf("no class %s", cls)
	}
	m := c.Method(name, sig)
	if m == nil {
		t.Fatalf("no method %s.%s%s", cls, name, sig)
	}
	return m
}

func TestBaseCompileResolvesOffsets(t *testing.T) {
	reg, c := setup(t)
	pair := reg.LookupClass("Pair")
	m := method(t, reg, "Pair", "sum", "()I")
	cm, err := c.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Level != rt.Base || len(cm.Code) != len(m.Def.Code) {
		t.Fatalf("base compile not 1:1: %d vs %d", len(cm.Code), len(m.Def.Code))
	}
	// getfield Pair.a resolves to the field's word offset with B=0.
	ins := cm.Code[1]
	if ins.Op != bytecode.GETFIELD_R || int(ins.A) != pair.Field("a").Offset || ins.B != 0 {
		t.Fatalf("getfield a resolved wrong: %+v", ins)
	}
	// getfield Pair.b is a reference: B=1.
	ins = cm.Code[3]
	if ins.Op != bytecode.GETFIELD_R || ins.B != 1 {
		t.Fatalf("getfield b resolved wrong: %+v", ins)
	}
	if !cm.LayoutDeps[pair] {
		t.Fatal("layout dependency on Pair not recorded")
	}
}

func TestStaticResolution(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Caller", "useStatic", "()I")
	cm, err := c.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	slot := reg.LookupClass("Pair").StaticField("shared").Slot
	if cm.Code[0].Op != bytecode.GETSTATIC_R || int(cm.Code[0].A) != slot {
		t.Fatalf("getstatic resolved wrong: %+v", cm.Code[0])
	}
}

func TestVirtualResolution(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Caller", "dispatch", "(LPair;)I")
	cm, err := c.Compile(m, rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	ins := cm.Code[1]
	slot := reg.LookupClass("Pair").VSlot("sum", "()I")
	if ins.Op != bytecode.INVOKEVIRT_R || int(ins.A) != slot || ins.B != 1 {
		t.Fatalf("invokevirtual resolved wrong: %+v (want slot %d)", ins, slot)
	}
}

func TestUnknownSymbolsFail(t *testing.T) {
	reg, c := setup(t)
	bad := classfile.NewClass("Bad", "Object").
		Method("m", "()V").New("Nowhere").Op(bytecode.POP).Ret().Done().
		MustBuild()
	cls, err := reg.Load(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(cls.Method("m", "()V"), rt.Base); err == nil {
		t.Fatal("compile with unknown class succeeded")
	}
}

func TestOptConstantFolding(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Caller", "fold", "()I")
	cm, err := c.Compile(m, rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	// const3/const4/add must fold to 7; then 7/const10/mul folds to 70.
	found70 := false
	for _, ins := range cm.Code {
		if ins.Op == bytecode.CONST_R && ins.A == 70 {
			found70 = true
		}
	}
	if !found70 {
		t.Fatalf("folding failed; code:\n%v", cm.Code)
	}
}

func TestOptInlinesSmallDirectCalls(t *testing.T) {
	reg, c := setup(t)
	m := method(t, reg, "Caller", "addTiny", "(LPair;)I")
	cm, err := c.Compile(m, rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	tiny := method(t, reg, "Pair", "tiny", "()I")
	foundInline := false
	for _, ins := range cm.Code {
		if ins.Op == bytecode.ENTERINL_R && ins.Ref == tiny {
			foundInline = true
		}
		if ins.Op == bytecode.INVOKESPEC_R && ins.Ref == tiny {
			t.Fatal("call site survived inlining")
		}
	}
	if !foundInline {
		t.Fatalf("tiny not inlined; code:\n%v", cm.Code)
	}
	wantInlined := false
	for _, im := range cm.Inlined {
		if im == tiny {
			wantInlined = true
		}
	}
	if !wantInlined {
		t.Fatal("Inlined list does not record tiny")
	}
	// The callee's layout deps are merged into the caller.
	if !cm.LayoutDeps[reg.LookupClass("Pair")] {
		t.Fatal("inlined callee deps not merged")
	}
	// Locals grew for the inlined body.
	if cm.MaxLocals < m.Def.MaxLocals+tiny.Def.MaxLocals {
		t.Fatalf("MaxLocals = %d, want >= %d", cm.MaxLocals, m.Def.MaxLocals+tiny.Def.MaxLocals)
	}
}

func TestInlineRespectsSizeLimit(t *testing.T) {
	reg, c := setup(t)
	c.InlineMaxCode = 2 // tiny has 4 instructions: too big now
	m := method(t, reg, "Caller", "addTiny", "(LPair;)I")
	cm, err := c.Compile(m, rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range cm.Code {
		if ins.Op == bytecode.ENTERINL_R {
			t.Fatal("inlined despite size limit")
		}
	}
	_ = cm
}

func TestNativeCallsResolveToNativeInvoke(t *testing.T) {
	reg, c := setup(t)
	nat := classfile.NewClass("Sys", "Object").
		NativeMethod("now", "()I", true).
		MustBuild()
	if _, err := reg.Load(nat); err != nil {
		t.Fatal(err)
	}
	caller := classfile.NewClass("NC", "Object").
		StaticMethod("m", "()I").Static("Sys", "now", "()I").Ret().Done().
		MustBuild()
	cls, err := reg.Load(caller)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := c.Compile(cls.Method("m", "()I"), rt.Base)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Code[0].Op != bytecode.INVOKENAT_R {
		t.Fatalf("native call resolved to %v", cm.Code[0].Op)
	}
	// Natives are never inlined even at opt level.
	cmo, err := c.Compile(cls.Method("m", "()I"), rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range cmo.Code {
		if ins.Op == bytecode.ENTERINL_R {
			t.Fatal("native inlined")
		}
	}
}

func TestBranchTargetsRemappedAfterInline(t *testing.T) {
	reg, c := setup(t)
	// A caller with a loop around an inlinable call: branch targets must
	// stay consistent after splicing.
	src := classfile.NewClass("LoopCaller", "Object").
		StaticMethod("run", "(LPair;I)I")
	mb := src.Label("top").
		Load(1).
		Branch(bytecode.IFLE, "done").
		Load(0).
		Special("Pair", "tiny", "()I")
	mb = mb.Op(bytecode.POP).
		Load(1).Const(1).Op(bytecode.SUB).Store(1).
		Branch(bytecode.GOTO, "top").
		Label("done").
		Const(0)
	cls, err := reg.Load(mb.Ret().Done().MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	cm, err := c.Compile(cls.Method("run", "(LPair;I)I"), rt.Opt)
	if err != nil {
		t.Fatal(err)
	}
	for pc, ins := range cm.Code {
		if ins.Op.IsBranch() {
			if ins.A < 0 || ins.A > int64(len(cm.Code)) {
				t.Fatalf("branch at %d targets %d outside code (len %d)", pc, ins.A, len(cm.Code))
			}
		}
	}
}
