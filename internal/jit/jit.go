// Package jit is the simulated just-in-time compiler. "Compilation" here
// means resolving symbolic bytecode against the live class registry into an
// executable instruction array with hard-coded field offsets, JTOC slots,
// and TIB slots — the property that makes JVOLVE's category-(2) "indirect"
// methods real: when a class's layout changes, code that baked in its
// offsets is stale and must be recompiled (or OSRed if on stack).
//
// Three tiers mirror Jikes RVM's adaptive system: the base compiler is a
// strict 1:1 translation of bytecode (so the OSR pc-map is the identity);
// the fused tier adds in-place superinstruction fusion and inline caches to
// base code (trace promotion moves hot loops here without waiting for a
// return); and the opt compiler additionally inlines small static/special
// calls and folds constants, recording what it inlined so the DSU engine
// can restrict inlining callers of updated methods. Fusion rewrites pairs
// in place ([A,B] becomes [FUSED,FPAD]), so code length and branch targets
// never change and the OSR pc-map stays valid: a fused pc deoptimizes to
// its first constituent's bytecode pc.
package jit

import (
	"fmt"

	"govolve/internal/bytecode"
	"govolve/internal/classfile"
	"govolve/internal/rt"
)

// Compiler resolves methods against a registry.
type Compiler struct {
	Reg *rt.Registry

	// OptThreshold is the invocation count at which the adaptive system
	// recompiles a base-compiled method at the opt level.
	OptThreshold int
	// InlineMaxCode is the largest callee body (in instructions) the opt
	// compiler inlines.
	InlineMaxCode int

	// NoIC disables inline-cache installation in fused/opt code. The
	// dispatch benchmark uses it to isolate the fusion win from the IC win;
	// everything else leaves it false.
	NoIC bool

	// Counters for the benchmark harness and the obs metrics plane.
	BaseCompiles  int
	OptCompiles   int
	FusedCompiles int
}

// New builds a compiler with Jikes-flavoured defaults.
func New(reg *rt.Registry) *Compiler {
	return &Compiler{Reg: reg, OptThreshold: 50, InlineMaxCode: 16}
}

// Compile produces executable code for the method at the given level. It
// never mutates the method; the caller installs the result.
func (c *Compiler) Compile(m *rt.Method, level rt.OptLevel) (*rt.CompiledMethod, error) {
	if m.Def.Native {
		return nil, fmt.Errorf("jit: cannot compile native method %s", m.FullName())
	}
	cm, err := c.baseCompile(m)
	if err != nil {
		return nil, err
	}
	c.BaseCompiles++
	switch level {
	case rt.Opt:
		cm = c.optimize(cm)
		c.OptCompiles++
	case rt.Fused:
		cm = c.fusedTier(cm)
		c.FusedCompiles++
	}
	// Final pass: bake each instruction's minimum stack need into the
	// executable form, so the interpreter's underflow guard is a single
	// precomputed compare instead of an opcode switch on the hot path.
	// This must run after inlining and folding so spliced and rewritten
	// instructions carry correct needs.
	rt.ResolveStackNeeds(cm.Code)
	return cm, nil
}

// baseCompile is the 1:1 resolution pass.
func (c *Compiler) baseCompile(m *rt.Method) (*rt.CompiledMethod, error) {
	def := m.Def
	cm := &rt.CompiledMethod{
		Method:     m,
		Level:      rt.Base,
		Code:       make([]rt.Ins, len(def.Code)),
		MaxLocals:  def.MaxLocals,
		LayoutDeps: make(map[*rt.Class]bool),
	}
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("jit: %s pc=%d: %s", m.FullName(), pc, fmt.Sprintf(format, args...))
	}
	for pc, ins := range def.Code {
		out := rt.Ins{Op: ins.Op, A: ins.A, Str: ins.Str}
		switch ins.Op {
		case bytecode.LDC:
			out.Op = bytecode.LDC_R
			out.A = int64(c.Reg.InternIndex(ins.Str))
		case bytecode.GETFIELD, bytecode.PUTFIELD:
			named := c.Reg.LookupClass(ins.SymClass())
			if named == nil {
				return nil, fail(pc, "unknown class %s", ins.SymClass())
			}
			f := named.Field(ins.SymMember())
			if f == nil {
				return nil, fail(pc, "unknown field %s", ins.Sym)
			}
			if ins.Op == bytecode.GETFIELD {
				out.Op = bytecode.GETFIELD_R
			} else {
				out.Op = bytecode.PUTFIELD_R
			}
			out.A = int64(f.Offset)
			if f.Desc.IsRef() {
				out.B = 1
			}
			cm.LayoutDeps[named] = true
		case bytecode.GETSTATIC, bytecode.PUTSTATIC:
			named := c.Reg.LookupClass(ins.SymClass())
			if named == nil {
				return nil, fail(pc, "unknown class %s", ins.SymClass())
			}
			s := named.StaticField(ins.SymMember())
			if s == nil {
				return nil, fail(pc, "unknown static field %s", ins.Sym)
			}
			if ins.Op == bytecode.GETSTATIC {
				out.Op = bytecode.GETSTATIC_R
			} else {
				out.Op = bytecode.PUTSTATIC_R
			}
			out.A = int64(s.Slot)
			if s.Desc.IsRef() {
				out.B = 1
			}
			cm.LayoutDeps[named] = true
		case bytecode.NEW:
			cls := c.Reg.LookupClass(ins.Sym)
			if cls == nil {
				return nil, fail(pc, "unknown class %s", ins.Sym)
			}
			out.Op, out.Cls = bytecode.NEW_R, cls
			cm.LayoutDeps[cls] = true
		case bytecode.INSTANCEOF:
			cls := c.Reg.LookupClass(ins.Sym)
			if cls == nil {
				return nil, fail(pc, "unknown class %s", ins.Sym)
			}
			out.Op, out.Cls = bytecode.INSTOF_R, cls
			cm.LayoutDeps[cls] = true
		case bytecode.CHECKCAST:
			cls := c.Reg.LookupClass(ins.Sym)
			if cls == nil {
				return nil, fail(pc, "unknown class %s", ins.Sym)
			}
			out.Op, out.Cls = bytecode.CHECKCAST_R, cls
			cm.LayoutDeps[cls] = true
		case bytecode.NEWARRAY:
			out.Op = bytecode.NEWARRAY_R
			if classfile.Desc(ins.Desc).IsRef() {
				out.B = 1
			}
		case bytecode.INVOKEVIRTUAL:
			named := c.Reg.LookupClass(ins.SymClass())
			if named == nil {
				return nil, fail(pc, "unknown class %s", ins.SymClass())
			}
			sig := classfile.Sig(ins.Desc)
			target := named.Method(ins.SymMember(), sig)
			if target == nil || !target.IsVirtual() {
				return nil, fail(pc, "no virtual method %s%s in %s", ins.SymMember(), sig, named.Name)
			}
			out.Op = bytecode.INVOKEVIRT_R
			out.A = int64(target.TIBSlot)
			out.B = int32(sig.NumArgs()) + 1
			out.Ref = target
			out.RetVoid = sig.Ret() == "V"
			cm.LayoutDeps[named] = true
		case bytecode.INVOKESTATIC, bytecode.INVOKESPECIAL:
			named := c.Reg.LookupClass(ins.SymClass())
			if named == nil {
				return nil, fail(pc, "unknown class %s", ins.SymClass())
			}
			sig := classfile.Sig(ins.Desc)
			target := named.Method(ins.SymMember(), sig)
			if target == nil {
				return nil, fail(pc, "no method %s%s in %s", ins.SymMember(), sig, named.Name)
			}
			nargs := int32(sig.NumArgs())
			if ins.Op == bytecode.INVOKESPECIAL {
				nargs++ // receiver
				out.Op = bytecode.INVOKESPEC_R
			} else {
				out.Op = bytecode.INVOKESTAT_R
			}
			if target.Def.Native {
				out.Op = bytecode.INVOKENAT_R
			}
			out.B = nargs
			out.Ref = target
			out.RetVoid = sig.Ret() == "V"
			cm.LayoutDeps[named] = true
		case bytecode.RETURN:
			out.RetVoid = m.Def.Sig.Ret() == "V"
		}
		cm.Code[pc] = out
	}
	return cm, nil
}

// optimize applies inlining, constant folding, superinstruction fusion,
// and inline caches to base code, producing opt-level code. The input is
// consumed. Fusion runs last and in place, so the pc-map built by inlining
// stays valid: a fused pc inherits the map entry of its first constituent.
func (c *Compiler) optimize(cm *rt.CompiledMethod) *rt.CompiledMethod {
	out := c.inline(cm)
	out.Code = foldConstants(out.Code)
	fuse(out.Code)
	if !c.NoIC {
		installICs(out)
	}
	out.Level = rt.Opt
	return out
}

// fusedTier turns base code into the trace-promoted loop tier: in-place
// superinstruction fusion plus inline caches, no inlining. Because fusion
// preserves instruction indexes, the pc-map is the identity — materialized
// explicitly so the OSR deopt contract (fused pc → first constituent's
// bytecode pc) is a table lookup like the opt tier's, not a special case.
func (c *Compiler) fusedTier(cm *rt.CompiledMethod) *rt.CompiledMethod {
	fuse(cm.Code)
	if !c.NoIC {
		installICs(cm)
	}
	pcMap := make([]int, len(cm.Code))
	for i := range pcMap {
		pcMap[i] = i
	}
	cm.PCMap = pcMap
	cm.Level = rt.Fused
	return cm
}

// installICs embeds a fresh inline cache at every virtual call site and
// records it in ICSites so the DSU install phase can flush them without
// scanning instruction streams.
func installICs(cm *rt.CompiledMethod) {
	for i := range cm.Code {
		switch cm.Code[i].Op {
		case bytecode.INVOKEVIRT_R, bytecode.FLOADINVOKE:
			ic := &rt.ICache{}
			cm.Code[i].IC = ic
			cm.ICSites = append(cm.ICSites, ic)
		}
	}
}

// fusable reports whether the adjacent pair (a, b) at index i matches the
// fusion catalog, and returns the fused replacement. The caller has already
// checked that i+1 is not a branch target. Branch-carrying fusions refuse
// the degenerate self-target (b jumping to its own pc, i+1): the fused
// backedge test compares against the pair's first pc, which would turn that
// one case from a backedge into a forward edge and shift yield boundaries.
func fusable(i int, a, b rt.Ins) (rt.Ins, bool) {
	isConst := func(op bytecode.Op) bool {
		return op == bytecode.CONST || op == bytecode.CONST_R
	}
	switch {
	case isConst(a.Op):
		switch b.Op {
		case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.AND,
			bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
			return rt.Ins{Op: bytecode.FCONSTARITH, A: a.A, C: int32(b.Op)}, true
		case bytecode.DIV, bytecode.REM:
			// A compile-time nonzero divisor needs no runtime zero trap.
			if a.A != 0 {
				return rt.Ins{Op: bytecode.FCONSTARITH, A: a.A, C: int32(b.Op)}, true
			}
		case bytecode.IF_ICMPEQ, bytecode.IF_ICMPNE, bytecode.IF_ICMPLT,
			bytecode.IF_ICMPLE, bytecode.IF_ICMPGT, bytecode.IF_ICMPGE:
			if int(b.A) != i+1 {
				return rt.Ins{Op: bytecode.FCONSTCMPBR, A: a.A, B: int32(b.Op), C: int32(b.A)}, true
			}
		}
	case a.Op == bytecode.LOAD:
		switch {
		case b.Op == bytecode.LOAD:
			return rt.Ins{Op: bytecode.FLOADLOAD, A: a.A, C: int32(b.A)}, true
		case b.Op.IsConditional() && int(b.A) != i+1:
			return rt.Ins{Op: bytecode.FLOADCMPBR, A: b.A, B: int32(b.Op), C: int32(a.A)}, true
		case b.Op == bytecode.INVOKEVIRT_R:
			return rt.Ins{Op: bytecode.FLOADINVOKE, A: b.A, B: b.B,
				C: int32(a.A), Ref: b.Ref, RetVoid: b.RetVoid}, true
		}
	case a.Op == bytecode.STORE:
		switch b.Op {
		case bytecode.LOAD:
			return rt.Ins{Op: bytecode.FSTORELOAD, A: a.A, C: int32(b.A)}, true
		case bytecode.GOTO:
			if int(b.A) != i+1 {
				return rt.Ins{Op: bytecode.FSTOREGOTO, A: a.A, C: int32(b.A)}, true
			}
		}
	case a.Op == bytecode.GETFIELD_R && a.B == 1 && b.Op == bytecode.GETFIELD_R:
		return rt.Ins{Op: bytecode.FGETGET, A: a.A, C: int32(b.A), B: b.B}, true
	}
	return rt.Ins{}, false
}

// fuse rewrites adjacent instruction pairs from the fusion catalog into
// single superinstructions, greedily left to right and strictly in place:
// the pair [A, B] becomes [FUSED, FPAD], so code length, branch targets,
// and the pc-map all survive untouched. A pair whose second instruction is
// a branch target is never fused — control must be able to land on it.
func fuse(code []rt.Ins) {
	targets := make(map[int]bool)
	for _, ins := range code {
		if ins.Op.IsBranch() {
			targets[int(ins.A)] = true
		}
	}
	for i := 0; i+1 < len(code); i++ {
		if targets[i+1] {
			continue
		}
		f, ok := fusable(i, code[i], code[i+1])
		if !ok {
			continue
		}
		code[i] = f
		code[i+1] = rt.Ins{Op: bytecode.FPAD}
		i++ // the pad is consumed; never pair it as a first constituent
	}

	// Second sweep: chain a fused pair with the constituent (or pair) that
	// follows its pad into a 3- or 4-wide superinstruction. The same
	// in-place rules hold — the absorbed slot must not be a branch target
	// (the slot after it, when part of a pair, is already target-free from
	// the first sweep) — and only trap-free shapes chain, so one dispatch
	// accounts for every constituent step without a mid-chain kill ever
	// observing a partial count.
	for i := 0; i+2 < len(code); i++ {
		if targets[i+2] {
			continue
		}
		switch code[i].Op {
		case bytecode.FLOADLOAD:
			// load A; load C; arith B. DIV/REM are excluded: their divisor
			// is a runtime local, and a zero would need the kill path to
			// reconstruct which constituent trapped.
			switch code[i+2].Op {
			case bytecode.ADD, bytecode.SUB, bytecode.MUL, bytecode.AND,
				bytecode.OR, bytecode.XOR, bytecode.SHL, bytecode.SHR:
				code[i] = rt.Ins{Op: bytecode.FLOADLOADARITH, A: code[i].A,
					B: int32(code[i+2].Op), C: code[i].C}
				code[i+2] = rt.Ins{Op: bytecode.FPAD}
				i += 2
			}
		case bytecode.FCONSTARITH:
			// Two const+arith pairs back to back: const A, arith lo(B);
			// const C, arith hi(B). The second constant must fit the int32
			// C operand; both divisors were already proven nonzero by the
			// first sweep.
			if code[i+2].Op == bytecode.FCONSTARITH {
				c2 := code[i+2].A
				if int64(int32(c2)) == c2 {
					code[i] = rt.Ins{Op: bytecode.FCONSTARITH2, A: code[i].A,
						B: code[i].C | code[i+2].C<<8, C: int32(c2)}
					code[i+2] = rt.Ins{Op: bytecode.FPAD}
					i += 3
				}
			}
		}
	}
}

// inlinable reports whether a resolved call site can be inlined: direct
// dispatch, small, non-native, non-recursive, and compilable.
func (c *Compiler) inlinable(caller *rt.Method, ins rt.Ins) bool {
	if ins.Op != bytecode.INVOKESTAT_R && ins.Op != bytecode.INVOKESPEC_R {
		return false
	}
	callee := ins.Ref
	if callee == caller || callee.Def.Native {
		return false
	}
	return len(callee.Def.Code) <= c.InlineMaxCode
}

// inline splices small direct callees into the caller. Inlined locals live
// above the caller's own locals; callee returns become jumps to the splice
// end (a value-returning callee leaves its result on the operand stack,
// which is exactly where the call would have put it).
func (c *Compiler) inline(cm *rt.CompiledMethod) *rt.CompiledMethod {
	var newCode []rt.Ins
	var pcMap []int                      // new pc -> original pc (-1 inside inlined regions)
	remap := make([]int, len(cm.Code)+1) // old pc -> new pc
	maxLocals := cm.MaxLocals

	type pendingBranch struct {
		newIdx  int
		oldTarg int
	}
	var fixups []pendingBranch

	emit := func(ins rt.Ins, origPC int) {
		newCode = append(newCode, ins)
		pcMap = append(pcMap, origPC)
	}

	for pc, ins := range cm.Code {
		remap[pc] = len(newCode)
		if !c.inlinable(cm.Method, ins) {
			if ins.Op.IsBranch() {
				fixups = append(fixups, pendingBranch{len(newCode), int(ins.A)})
			}
			emit(ins, pc)
			continue
		}
		callee := ins.Ref
		calleeCM, err := c.baseCompile(callee)
		if err != nil {
			// Unresolvable callee (e.g. refers to classes not yet
			// loaded): leave the call site alone.
			if ins.Op.IsBranch() {
				fixups = append(fixups, pendingBranch{len(newCode), int(ins.A)})
			}
			emit(ins, pc)
			continue
		}
		base := maxLocals
		if base+calleeCM.MaxLocals > maxLocals {
			maxLocals = base + calleeCM.MaxLocals
		}
		// Prologue: pop the B arguments into callee locals [base, base+B).
		// At the prologue the operand stack holds exactly the call's
		// arguments, matching base execution at the call site, so the
		// prologue maps to the original call pc.
		emit(rt.Ins{Op: bytecode.ENTERINL_R, A: int64(base), B: ins.B, Ref: callee}, pc)
		spliceStart := len(newCode)
		// Record where callee RETURNs must jump; patched after splicing.
		var retJumps []int
		for _, cins := range calleeCM.Code {
			ci := cins
			switch {
			case ci.Op == bytecode.LOAD || ci.Op == bytecode.STORE:
				ci.A += int64(base)
			case ci.Op.IsBranch():
				ci.A += int64(spliceStart) // callee-local target, shifted
			case ci.Op == bytecode.RETURN:
				retJumps = append(retJumps, len(newCode))
				ci = rt.Ins{Op: bytecode.GOTO}
			}
			emit(ci, -1)
		}
		spliceEnd := len(newCode)
		for _, rj := range retJumps {
			newCode[rj].A = int64(spliceEnd)
		}
		// At the epilogue the stack holds the return value (if any),
		// matching base execution just past the call.
		emit(rt.Ins{Op: bytecode.LEAVEINL_R, Ref: callee}, pc+1)
		for dep := range calleeCM.LayoutDeps {
			cm.LayoutDeps[dep] = true
		}
		cm.Inlined = append(cm.Inlined, callee)
		cm.Inlined = append(cm.Inlined, calleeCM.Inlined...)
	}
	remap[len(cm.Code)] = len(newCode)
	for _, f := range fixups {
		newCode[f.newIdx].A = int64(remap[f.oldTarg])
	}
	cm.Code = newCode
	cm.PCMap = pcMap
	cm.MaxLocals = maxLocals
	return cm
}

// foldConstants rewrites CONST/CONST/arith triples into single constants.
// It only folds when neither constant is a branch target, to keep branch
// indexes valid without remapping.
func foldConstants(code []rt.Ins) []rt.Ins {
	targets := make(map[int]bool)
	for _, ins := range code {
		if ins.Op.IsBranch() {
			targets[int(ins.A)] = true
		}
	}
	isConst := func(i rt.Ins) bool {
		return i.Op == bytecode.CONST || i.Op == bytecode.CONST_R
	}
	for i := 0; i+2 < len(code); i++ {
		a, b, op := code[i], code[i+1], code[i+2]
		if !isConst(a) || !isConst(b) {
			continue
		}
		if targets[i+1] || targets[i+2] {
			continue
		}
		var v int64
		switch op.Op {
		case bytecode.ADD:
			v = a.A + b.A
		case bytecode.SUB:
			v = a.A - b.A
		case bytecode.MUL:
			v = a.A * b.A
		case bytecode.AND:
			v = a.A & b.A
		case bytecode.OR:
			v = a.A | b.A
		case bytecode.XOR:
			v = a.A ^ b.A
		default:
			continue
		}
		// Replace the triple with NOP/NOP/CONST so indexes stay stable.
		code[i] = rt.Ins{Op: bytecode.NOP}
		code[i+1] = rt.Ins{Op: bytecode.NOP}
		code[i+2] = rt.Ins{Op: bytecode.CONST_R, A: v}
	}
	return code
}
