package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"govolve/internal/classfile"
	"govolve/internal/heap"
	"govolve/internal/rt"
)

// TestDSUCollectRandomGraphsProperty: random object graphs mixing an
// updated class and a stable class. After a DSU collection:
//
//   - every reachable updated-class object has exactly one log pair;
//   - every shell carries the new class with zeroed fields;
//   - every old copy preserves the original's values, with its references
//     forwarded into to-space;
//   - stable objects are copied normally with values intact;
//   - sharing is preserved (two paths to one object reach one copy).
func TestDSUCollectRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := rt.NewRegistry()
		// Alternate between the paper's old-copies-in-to-space layout and
		// the §3.5 scratch-region variant; the invariants are identical.
		var h *heap.Heap
		if seed%2 == 0 {
			h = heap.New(1 << 15)
		} else {
			h = heap.NewWithScratch(1<<15, 1<<14)
		}

		oldDef := classfile.NewClass("Up", "").
			Field("val", "I").
			Field("peer", "LUp;").
			Field("other", "LStable;").
			MustBuild()
		upCls, err := reg.Load(oldDef)
		if err != nil {
			return false
		}
		stableCls, err := reg.Load(classfile.NewClass("Stable", "").
			Field("val", "I").
			Field("peer", "LUp;").
			MustBuild())
		if err != nil {
			return false
		}
		newDef := classfile.NewClass("UpV2", "").
			Field("added", "I").
			Field("val", "I").
			Field("peer", "LUpV2;").
			Field("other", "LStable;").
			MustBuild()
		newCls, err := reg.Load(newDef)
		if err != nil {
			return false
		}
		upCls.UpdatedTo = newCls

		const (
			offVal   = rt.HeaderWords // Up.val / Stable.val
			offPeer  = rt.HeaderWords + 1
			offOther = rt.HeaderWords + 2
		)

		n := rng.Intn(40) + 2
		addrs := make([]rt.Addr, n)
		isUp := make([]bool, n)
		vals := make([]int64, n)
		for i := range addrs {
			isUp[i] = rng.Intn(2) == 0
			cls := stableCls
			if isUp[i] {
				cls = upCls
			}
			a, ok := h.AllocObject(cls)
			if !ok {
				return false
			}
			vals[i] = rng.Int63n(1 << 20)
			h.SetFieldValue(a, offVal, rt.IntVal(vals[i]))
			addrs[i] = a
		}
		peer := make([]int, n) // -1 = null
		other := make([]int, n)
		for i := range addrs {
			peer[i] = -1
			other[i] = -1
			// peer must point at an Up object, other at a Stable one
			// (type-correct graphs only).
			if rng.Intn(3) > 0 {
				j := rng.Intn(n)
				if isUp[j] {
					peer[i] = j
					h.SetFieldValue(addrs[i], offPeer, rt.RefVal(addrs[j]))
				}
			}
			if isUp[i] && rng.Intn(3) > 0 {
				j := rng.Intn(n)
				if !isUp[j] {
					other[i] = j
					h.SetFieldValue(addrs[i], offOther, rt.RefVal(addrs[j]))
				}
			}
		}

		// Roots: a random non-empty subset.
		roots := []rt.Value{}
		rootIdx := []int{}
		for i := range addrs {
			if i == 0 || rng.Intn(3) == 0 {
				roots = append(roots, rt.RefVal(addrs[i]))
				rootIdx = append(rootIdx, i)
			}
		}

		col := New(h, reg)
		res, err := col.Collect(RootsFunc(func(fn func(*rt.Value)) {
			for i := range roots {
				fn(&roots[i])
			}
		}), true)
		if err != nil {
			return false
		}

		// Reachability in the model.
		reach := map[int]bool{}
		var mark func(int)
		mark = func(i int) {
			if reach[i] {
				return
			}
			reach[i] = true
			if peer[i] >= 0 {
				mark(peer[i])
			}
			if other[i] >= 0 {
				mark(other[i])
			}
		}
		for _, i := range rootIdx {
			mark(i)
		}
		wantPairs := 0
		for i := range reach {
			if isUp[i] {
				wantPairs++
			}
		}
		if len(res.Log) != wantPairs {
			t.Logf("seed %d: %d pairs, want %d", seed, len(res.Log), wantPairs)
			return false
		}

		// Walk the new graph checking all invariants.
		newOf := map[int]rt.Addr{}
		var walk func(i int, a rt.Addr) bool
		walk = func(i int, a rt.Addr) bool {
			if prev, ok := newOf[i]; ok {
				return prev == a
			}
			newOf[i] = a
			if isUp[i] {
				if h.ClassID(a) != newCls.ID {
					return false
				}
				// Shell fields zeroed.
				for w := 0; w < newCls.Size-rt.HeaderWords; w++ {
					if h.FieldValue(a, rt.HeaderWords+w, false).Bits != 0 {
						return false
					}
				}
				// The paired old copy preserves the value and forwards
				// its references to the new copies.
				oldCopy, ok := res.OldForNew[a]
				if !ok || h.ClassID(oldCopy) != upCls.ID {
					return false
				}
				if h.FieldValue(oldCopy, offVal, false).Int() != vals[i] {
					return false
				}
				if peer[i] >= 0 {
					ref := h.FieldValue(oldCopy, offPeer, true).Ref()
					if !walk(peer[i], ref) {
						return false
					}
				}
				if other[i] >= 0 {
					ref := h.FieldValue(oldCopy, offOther, true).Ref()
					if !walk(other[i], ref) {
						return false
					}
				}
				return true
			}
			// Stable object: plain copy.
			if h.ClassID(a) != stableCls.ID {
				return false
			}
			if h.FieldValue(a, offVal, false).Int() != vals[i] {
				return false
			}
			if peer[i] >= 0 {
				if !walk(peer[i], h.FieldValue(a, offPeer, true).Ref()) {
					return false
				}
			}
			return true
		}
		for k, i := range rootIdx {
			if !walk(i, roots[k].Ref()) {
				t.Logf("seed %d: invariant violated at root %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
