package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"govolve/internal/classfile"
	"govolve/internal/heap"
	"govolve/internal/rt"
)

// node is a 2-ref, 1-int class used to build arbitrary object graphs.
func nodeClass(t testing.TB, reg *rt.Registry, name string) *rt.Class {
	t.Helper()
	def, err := classfile.NewClass(name, "").
		Field("val", "I").
		Field("left", classfile.RefOf(name)).
		Field("right", classfile.RefOf(name)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cls, err := reg.Load(def)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

const (
	offVal   = rt.HeaderWords + 0
	offLeft  = rt.HeaderWords + 1
	offRight = rt.HeaderWords + 2
)

type world struct {
	reg   *rt.Registry
	h     *heap.Heap
	cls   *rt.Class
	roots []rt.Value
}

func newWorld(t testing.TB, semi int) *world {
	reg := rt.NewRegistry()
	return &world{reg: reg, h: heap.New(semi), cls: nodeClass(t, reg, "Node")}
}

func (w *world) ForEachRoot(fn func(*rt.Value)) {
	for i := range w.roots {
		if w.roots[i].IsRef {
			fn(&w.roots[i])
		}
	}
}

func (w *world) alloc(t testing.TB, val int64) rt.Addr {
	a, ok := w.h.AllocObject(w.cls)
	if !ok {
		t.Fatal("alloc failed")
	}
	w.h.SetFieldValue(a, offVal, rt.IntVal(val))
	return a
}

func TestCollectPreservesReachableGraph(t *testing.T) {
	w := newWorld(t, 4096)
	// Build: root -> a -> b -> a (cycle), root2 -> c; d is garbage.
	a := w.alloc(t, 1)
	b := w.alloc(t, 2)
	c := w.alloc(t, 3)
	_ = w.alloc(t, 99) // garbage
	w.h.SetFieldValue(a, offLeft, rt.RefVal(b))
	w.h.SetFieldValue(b, offLeft, rt.RefVal(a))
	w.roots = []rt.Value{rt.RefVal(a), rt.RefVal(c)}

	col := New(w.h, w.reg)
	res, err := col.Collect(w, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiedObjects != 3 {
		t.Fatalf("copied %d objects, want 3 (garbage must not survive)", res.CopiedObjects)
	}
	na := w.roots[0].Ref()
	nc := w.roots[1].Ref()
	if w.h.FieldValue(na, offVal, false).Int() != 1 ||
		w.h.FieldValue(nc, offVal, false).Int() != 3 {
		t.Fatal("values lost in copy")
	}
	nb := w.h.FieldValue(na, offLeft, true).Ref()
	if w.h.FieldValue(nb, offVal, false).Int() != 2 {
		t.Fatal("edge a->b broken")
	}
	// Cycle: b.left must point back to the *new* a.
	if w.h.FieldValue(nb, offLeft, true).Ref() != na {
		t.Fatal("cycle not preserved / sharing broken")
	}
}

func TestCollectPreservesSharing(t *testing.T) {
	w := newWorld(t, 4096)
	shared := w.alloc(t, 7)
	p := w.alloc(t, 1)
	q := w.alloc(t, 2)
	w.h.SetFieldValue(p, offLeft, rt.RefVal(shared))
	w.h.SetFieldValue(q, offLeft, rt.RefVal(shared))
	w.roots = []rt.Value{rt.RefVal(p), rt.RefVal(q)}
	col := New(w.h, w.reg)
	if _, err := col.Collect(w, false); err != nil {
		t.Fatal(err)
	}
	np, nq := w.roots[0].Ref(), w.roots[1].Ref()
	if w.h.FieldValue(np, offLeft, true).Ref() != w.h.FieldValue(nq, offLeft, true).Ref() {
		t.Fatal("shared object duplicated")
	}
}

func TestCollectArrays(t *testing.T) {
	w := newWorld(t, 4096)
	a := w.alloc(t, 5)
	arr, ok := w.h.AllocArray(true, 3)
	if !ok {
		t.Fatal("array alloc")
	}
	w.h.SetElem(arr, 0, rt.RefVal(a))
	w.h.SetElem(arr, 2, rt.RefVal(arr)) // self-reference
	iarr, _ := w.h.AllocArray(false, 4)
	w.h.SetElem(iarr, 1, rt.IntVal(42))
	w.roots = []rt.Value{rt.RefVal(arr), rt.RefVal(iarr)}
	col := New(w.h, w.reg)
	if _, err := col.Collect(w, false); err != nil {
		t.Fatal(err)
	}
	narr, niarr := w.roots[0].Ref(), w.roots[1].Ref()
	if w.h.ArrayLen(narr) != 3 || !w.h.ArrayElemIsRef(narr) {
		t.Fatal("array header lost")
	}
	na := w.h.Elem(narr, 0).Ref()
	if w.h.FieldValue(na, offVal, false).Int() != 5 {
		t.Fatal("array element edge broken")
	}
	if w.h.Elem(narr, 2).Ref() != narr {
		t.Fatal("self reference broken")
	}
	if w.h.Elem(niarr, 1).Int() != 42 {
		t.Fatal("int array contents lost")
	}
}

func TestDSUCollectTransformsPairs(t *testing.T) {
	reg := rt.NewRegistry()
	h := heap.New(8192)
	oldCls := nodeClass(t, reg, "Node")
	// New version: one extra int field.
	newDef, err := classfile.NewClass("NodeV2", "").
		Field("val", "I").
		Field("left", "LNodeV2;").
		Field("right", "LNodeV2;").
		Field("extra", "I").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	newCls, err := reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	oldCls.UpdatedTo = newCls

	w := &world{reg: reg, h: h, cls: oldCls}
	a := w.alloc(t, 10)
	b := w.alloc(t, 20)
	w.h.SetFieldValue(a, offLeft, rt.RefVal(b))
	w.roots = []rt.Value{rt.RefVal(a)}

	col := New(h, reg)
	res, err := col.Collect(w, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != 2 {
		t.Fatalf("update log has %d pairs, want 2", len(res.Log))
	}
	// Roots point at new shells with the new class and zeroed fields.
	na := w.roots[0].Ref()
	if h.ClassID(na) != newCls.ID {
		t.Fatalf("root class id = %d, want new class", h.ClassID(na))
	}
	if h.FieldValue(na, offVal, false).Int() != 0 {
		t.Fatal("shell not zeroed")
	}
	// Each pair: old copy keeps old class id, values, and *forwarded*
	// references (old copies are scanned).
	for _, pair := range res.Log {
		if h.ClassID(pair.OldCopy) != oldCls.ID {
			t.Fatal("old copy lost its class")
		}
		if h.ClassID(pair.New) != newCls.ID {
			t.Fatal("new shell has wrong class")
		}
		if res.OldForNew[pair.New] != pair.OldCopy {
			t.Fatal("OldForNew cache wrong")
		}
	}
	// Old copy of a: val=10, left points to b's NEW shell.
	oldA := res.OldForNew[na]
	if h.FieldValue(oldA, offVal, false).Int() != 10 {
		t.Fatal("old copy lost field value")
	}
	left := h.FieldValue(oldA, offLeft, true).Ref()
	if h.ClassID(left) != newCls.ID {
		t.Fatal("old copy's reference was not forwarded to the transformed object")
	}
}

func TestDSUCollectLeavesOtherClassesAlone(t *testing.T) {
	reg := rt.NewRegistry()
	h := heap.New(4096)
	cls := nodeClass(t, reg, "Stable")
	w := &world{reg: reg, h: h, cls: cls}
	a := w.alloc(t, 1)
	w.roots = []rt.Value{rt.RefVal(a)}
	res, err := New(h, reg).Collect(w, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != 0 {
		t.Fatal("unchanged class landed in update log")
	}
	if h.ClassID(w.roots[0].Ref()) != cls.ID {
		t.Fatal("class id changed")
	}
}

func TestCollectToSpaceExhaustion(t *testing.T) {
	w := newWorld(t, 64)
	var prev rt.Addr
	for i := 0; i < 10; i++ {
		a, ok := w.h.AllocObject(w.cls)
		if !ok {
			break
		}
		w.h.SetFieldValue(a, offLeft, rt.RefVal(prev))
		prev = a
	}
	w.roots = []rt.Value{rt.RefVal(prev)}
	// Keep everything alive and also pretend there is more: to-space has
	// the same size, so copying all live objects plus DSU duplicates can
	// overflow. Force it by collecting with dsu while every object is
	// "updated" to a same-shape class.
	newDef, _ := classfile.NewClass("Node2", "").
		Field("val", "I").Field("left", "LNode2;").Field("right", "LNode2;").
		Build()
	newCls, err := w.reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	w.cls.UpdatedTo = newCls
	_, err = New(w.h, w.reg).Collect(w, true)
	if err == nil {
		t.Fatal("expected to-space exhaustion error")
	}
}

// Property test: random object graphs survive collection with isomorphic
// structure and identical values, and garbage never survives.
func TestCollectRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := newWorld(t, 1<<14)
		n := rng.Intn(60) + 2
		addrs := make([]rt.Addr, n)
		vals := make([]int64, n)
		for i := range addrs {
			vals[i] = rng.Int63n(1 << 30)
			addrs[i] = w.alloc(t, vals[i])
		}
		type edge struct{ from, slot, to int }
		var edges []edge
		for i := range addrs {
			if rng.Intn(2) == 0 {
				to := rng.Intn(n)
				w.h.SetFieldValue(addrs[i], offLeft, rt.RefVal(addrs[to]))
				edges = append(edges, edge{i, offLeft, to})
			}
			if rng.Intn(2) == 0 {
				to := rng.Intn(n)
				w.h.SetFieldValue(addrs[i], offRight, rt.RefVal(addrs[to]))
				edges = append(edges, edge{i, offRight, to})
			}
		}
		// Roots: a random subset.
		rootIdx := map[int]bool{}
		for i := range addrs {
			if rng.Intn(3) == 0 {
				rootIdx[i] = true
			}
		}
		rootIdx[0] = true
		idxOfRoot := []int{}
		for i := range addrs {
			if rootIdx[i] {
				w.roots = append(w.roots, rt.RefVal(addrs[i]))
				idxOfRoot = append(idxOfRoot, i)
			}
		}
		// Expected reachable set.
		reach := map[int]bool{}
		var mark func(int)
		mark = func(i int) {
			if reach[i] {
				return
			}
			reach[i] = true
			for _, e := range edges {
				if e.from == i {
					mark(e.to)
				}
			}
		}
		for i := range rootIdx {
			mark(i)
		}

		res, err := New(w.h, w.reg).Collect(w, false)
		if err != nil {
			return false
		}
		if res.CopiedObjects != len(reach) {
			return false
		}
		// Walk the new graph from each root and compare values via BFS
		// with the old index structure.
		newOf := map[int]rt.Addr{}
		var walk func(i int, a rt.Addr) bool
		walk = func(i int, a rt.Addr) bool {
			if prev, ok := newOf[i]; ok {
				return prev == a // sharing preserved
			}
			newOf[i] = a
			if w.h.FieldValue(a, offVal, false).Int() != vals[i] {
				return false
			}
			for _, e := range edges {
				if e.from != i {
					continue
				}
				na := w.h.FieldValue(a, e.slot, true).Ref()
				if na == rt.Null {
					return false
				}
				if !walk(e.to, na) {
					return false
				}
			}
			return true
		}
		for k, i := range idxOfRoot {
			if !walk(i, w.roots[k].Ref()) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
