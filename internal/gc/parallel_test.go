package gc

import (
	"errors"
	"math/rand"
	"testing"

	"govolve/internal/classfile"
	"govolve/internal/heap"
	"govolve/internal/rt"
)

// The serial/parallel equivalence suite: the parallel copy/scan collector
// must produce a heap observationally identical to the serial Cheney
// collector's — an isomorphic reachable graph with identical values,
// identical DSU pair sets, and a consistent OldForNew cache — differing
// only in physical addresses (TLAB carving makes to-space placement
// scheduling-dependent).

// buildWorld deterministically builds a random object graph from seed:
// Node instances (2 refs + 1 int), arrays of both kinds, shared structure
// and cycles, plus unreachable garbage. Two calls with the same seed
// produce word-for-word identical heaps, so one can be collected serially
// and the other in parallel and the results compared.
func buildWorld(t testing.TB, seed int64, semi int, scratch int) *world {
	rng := rand.New(rand.NewSource(seed))
	reg := rt.NewRegistry()
	w := &world{reg: reg, h: heap.NewWithScratch(semi, scratch), cls: nodeClass(t, reg, "Node")}

	n := 40 + rng.Intn(120)
	addrs := make([]rt.Addr, n)
	for i := range addrs {
		addrs[i] = w.alloc(t, rng.Int63n(1<<30))
	}
	// Random edges (cycles and sharing included).
	for i := range addrs {
		if rng.Intn(2) == 0 {
			w.h.SetFieldValue(addrs[i], offLeft, rt.RefVal(addrs[rng.Intn(n)]))
		}
		if rng.Intn(2) == 0 {
			w.h.SetFieldValue(addrs[i], offRight, rt.RefVal(addrs[rng.Intn(n)]))
		}
	}
	// A few arrays referencing nodes, and an int array.
	for k := 0; k < 3; k++ {
		arr, ok := w.h.AllocArray(true, 2+rng.Intn(6))
		if !ok {
			t.Fatal("array alloc")
		}
		for i := 0; i < w.h.ArrayLen(arr); i++ {
			if rng.Intn(3) != 0 {
				w.h.SetElem(arr, i, rt.RefVal(addrs[rng.Intn(n)]))
			}
		}
		w.roots = append(w.roots, rt.RefVal(arr))
	}
	iarr, ok := w.h.AllocArray(false, 5)
	if !ok {
		t.Fatal("int array alloc")
	}
	for i := 0; i < 5; i++ {
		w.h.SetElem(iarr, i, rt.IntVal(rng.Int63n(1<<20)))
	}
	w.roots = append(w.roots, rt.RefVal(iarr))
	// Garbage: allocated, never rooted.
	for k := 0; k < 10; k++ {
		w.alloc(t, 999)
	}
	// Root a random subset of nodes.
	for i := range addrs {
		if rng.Intn(3) == 0 {
			w.roots = append(w.roots, rt.RefVal(addrs[i]))
		}
	}
	w.roots = append(w.roots, rt.RefVal(addrs[0]))
	return w
}

// addUpdatedTo marks the Node class as updated to a wider NodeV2 in w's
// registry, mirroring what the DSU engine's install phase does.
func addUpdatedTo(t testing.TB, w *world) *rt.Class {
	newDef, err := classfile.NewClass("NodeV2", "").
		Field("val", "I").
		Field("left", "LNodeV2;").
		Field("right", "LNodeV2;").
		Field("extra", "I").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	newCls, err := w.reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	w.cls.UpdatedTo = newCls
	return newCls
}

// isoCheck walks the two post-collection heaps in lockstep from paired
// roots, requiring a graph isomorphism: same kinds, same class IDs, same
// non-reference words, same null-ness, and a bijective address pairing
// (sharing preserved both ways). With dsu set it additionally pairs each
// reachable new object's old copy through the two OldForNew caches.
func isoCheck(t *testing.T, wa, wb *world, ra, rb *Result, dsu bool) {
	t.Helper()
	aToB := make(map[rt.Addr]rt.Addr)
	bToA := make(map[rt.Addr]rt.Addr)
	var compare func(a, b rt.Addr)
	compare = func(a, b rt.Addr) {
		if (a == rt.Null) != (b == rt.Null) {
			t.Fatalf("null-ness mismatch: @%d vs @%d", a, b)
		}
		if a == rt.Null {
			return
		}
		if prev, ok := aToB[a]; ok {
			if prev != b {
				t.Fatalf("sharing broken: @%d maps to @%d and @%d", a, prev, b)
			}
			return
		}
		if prev, ok := bToA[b]; ok {
			t.Fatalf("sharing broken: @%d already paired with @%d", b, prev)
		}
		aToB[a], bToA[b] = b, a
		ha, hb := wa.h, wb.h
		if ha.IsArray(a) != hb.IsArray(b) {
			t.Fatalf("kind mismatch @%d/@%d", a, b)
		}
		if ha.IsArray(a) {
			if ha.ArrayLen(a) != hb.ArrayLen(b) || ha.ArrayElemIsRef(a) != hb.ArrayElemIsRef(b) {
				t.Fatalf("array shape mismatch @%d/@%d", a, b)
			}
			for i := 0; i < ha.ArrayLen(a); i++ {
				va, vb := ha.Elem(a, i), hb.Elem(b, i)
				if ha.ArrayElemIsRef(a) {
					compare(va.Ref(), vb.Ref())
				} else if va.Bits != vb.Bits {
					t.Fatalf("int array divergence @%d[%d]", a, i)
				}
			}
			return
		}
		if ha.ClassID(a) != hb.ClassID(b) {
			t.Fatalf("class mismatch @%d(%d) vs @%d(%d)", a, ha.ClassID(a), b, hb.ClassID(b))
		}
		cls := wa.reg.ClassByID(ha.ClassID(a))
		if cls == nil {
			t.Fatalf("unknown class id %d", ha.ClassID(a))
		}
		for i, isRef := range cls.RefMap {
			va := ha.FieldValue(a, rt.HeaderWords+i, isRef)
			vb := hb.FieldValue(b, rt.HeaderWords+i, isRef)
			if isRef {
				compare(va.Ref(), vb.Ref())
			} else if va.Bits != vb.Bits {
				t.Fatalf("field divergence %s@%d slot %d: %d vs %d", cls.Name, a, i, va.Bits, vb.Bits)
			}
		}
		if dsu {
			oa, oka := ra.OldForNew[a]
			ob, okb := rb.OldForNew[b]
			if oka != okb {
				t.Fatalf("pair-ness mismatch @%d/@%d", a, b)
			}
			if oka {
				compare(oa, ob)
			}
		}
	}
	if len(wa.roots) != len(wb.roots) {
		t.Fatalf("root count mismatch %d vs %d", len(wa.roots), len(wb.roots))
	}
	for i := range wa.roots {
		compare(wa.roots[i].Ref(), wb.roots[i].Ref())
	}
}

func runEquivalence(t *testing.T, seed int64, dsu bool, scratch int, workers int) {
	const semi = 1 << 13
	wa := buildWorld(t, seed, semi, scratch)
	wb := buildWorld(t, seed, semi, scratch)
	if dsu {
		addUpdatedTo(t, wa)
		addUpdatedTo(t, wb)
	}

	ra, err := New(wa.h, wa.reg).Collect(wa, dsu)
	if err != nil {
		t.Fatalf("serial collect: %v", err)
	}
	rb, err := NewWithOptions(wb.h, wb.reg, Options{Workers: workers}).Collect(wb, dsu)
	if err != nil {
		t.Fatalf("parallel collect: %v", err)
	}

	if ra.Workers != 1 || rb.Workers != workers {
		t.Fatalf("worker counts: serial %d, parallel %d (want 1, %d)", ra.Workers, rb.Workers, workers)
	}
	if ra.CopiedObjects != rb.CopiedObjects {
		t.Fatalf("copied objects: serial %d, parallel %d", ra.CopiedObjects, rb.CopiedObjects)
	}
	if ra.CopiedWords != rb.CopiedWords {
		t.Fatalf("copied words: serial %d, parallel %d", ra.CopiedWords, rb.CopiedWords)
	}
	if ra.PairsLogged != rb.PairsLogged || len(ra.Log) != len(rb.Log) {
		t.Fatalf("pair counts: serial %d, parallel %d", len(ra.Log), len(rb.Log))
	}
	// Per-worker accounting must fold back to the totals, and the merged
	// log must come out sorted by new-shell address (the deterministic
	// merge contract).
	if len(rb.WorkerWords) != workers {
		t.Fatalf("WorkerWords has %d entries, want %d", len(rb.WorkerWords), workers)
	}
	sum := 0
	for _, ww := range rb.WorkerWords {
		sum += ww
	}
	if sum != rb.CopiedWords {
		t.Fatalf("per-worker words sum %d != CopiedWords %d", sum, rb.CopiedWords)
	}
	for i := 1; i < len(rb.Log); i++ {
		if rb.Log[i-1].New >= rb.Log[i].New {
			t.Fatal("merged log not sorted by new-shell address")
		}
	}
	for _, p := range rb.Log {
		if rb.OldForNew[p.New] != p.OldCopy {
			t.Fatal("OldForNew inconsistent with merged log")
		}
	}
	isoCheck(t, wa, wb, ra, rb, dsu)
}

func TestParallelCollectEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runEquivalence(t, seed, false, 0, 4)
	}
}

func TestParallelDSUCollectEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runEquivalence(t, seed, true, 0, 4)
	}
}

func TestParallelDSUCollectEquivalenceScratch(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runEquivalence(t, seed, true, 1<<13, 4)
	}
	// And at other worker counts, to exercise the chunking edges.
	runEquivalence(t, 11, true, 1<<13, 2)
	runEquivalence(t, 12, true, 1<<13, 7)
}

// TestParallelCollectToSpaceExhaustion mirrors the serial OOM test: a DSU
// collection that cannot fit old copy + shell must fail with the typed
// error — and terminate (claim-spinners observe the failure flag instead of
// hanging on the sentinel).
func TestParallelCollectToSpaceExhaustion(t *testing.T) {
	w := newWorld(t, 64)
	var prev rt.Addr
	for {
		a, ok := w.h.AllocObject(w.cls)
		if !ok {
			break
		}
		w.h.SetFieldValue(a, offLeft, rt.RefVal(prev))
		prev = a
	}
	w.roots = []rt.Value{rt.RefVal(prev)}
	newDef, _ := classfile.NewClass("Node2", "").
		Field("val", "I").Field("left", "LNode2;").Field("right", "LNode2;").
		Build()
	newCls, err := w.reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	w.cls.UpdatedTo = newCls
	_, err = NewWithOptions(w.h, w.reg, Options{Workers: 4}).Collect(w, true)
	if err == nil {
		t.Fatal("expected to-space exhaustion error")
	}
	if !errors.Is(err, ErrToSpaceExhausted) {
		t.Fatalf("error %v is not ErrToSpaceExhausted", err)
	}
}

// TestSerialCollectTypedOOM pins the serial path to the same typed error.
func TestSerialCollectTypedOOM(t *testing.T) {
	w := newWorld(t, 64)
	var prev rt.Addr
	for {
		a, ok := w.h.AllocObject(w.cls)
		if !ok {
			break
		}
		w.h.SetFieldValue(a, offLeft, rt.RefVal(prev))
		prev = a
	}
	w.roots = []rt.Value{rt.RefVal(prev)}
	newDef, _ := classfile.NewClass("Node2", "").
		Field("val", "I").Field("left", "LNode2;").Field("right", "LNode2;").
		Build()
	newCls, err := w.reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	w.cls.UpdatedTo = newCls
	_, err = New(w.h, w.reg).Collect(w, true)
	if !errors.Is(err, ErrToSpaceExhausted) {
		t.Fatalf("serial DSU OOM %v is not ErrToSpaceExhausted", err)
	}
}

// TestAutoWorkers pins the AutoWorkers resolution.
func TestAutoWorkers(t *testing.T) {
	c := NewWithOptions(heap.New(1024), rt.NewRegistry(), Options{Workers: AutoWorkers})
	if c.EffectiveWorkers() < 1 {
		t.Fatal("AutoWorkers resolved below 1")
	}
	c2 := New(heap.New(1024), rt.NewRegistry())
	if c2.EffectiveWorkers() != 1 {
		t.Fatal("default collector is not serial")
	}
}
