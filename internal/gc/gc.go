// Package gc implements the semi-space copying collector and its DSU
// extension (JVOLVE paper §3.4). A normal collection copies reachable
// objects to to-space and forwards references. In DSU mode, when the
// collector first encounters an instance of an updated class it allocates
// *two* objects in to-space — a copy of the old object (old layout, old
// class ID) and an uninitialized shell of the new class — installs the
// forwarding pointer to the shell, and records the pair in the update log.
// After the collection the DSU engine runs object transformers over the log;
// dropping the log then makes the old copies unreachable, so the next
// collection reclaims them.
package gc

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"govolve/internal/heap"
	"govolve/internal/obs"
	"govolve/internal/rt"
)

// ErrToSpaceExhausted is the typed fatal-OOM cause: a collection ran out of
// copy space (to-space, or the scratch region during a DSU copy) mid-flight.
// The semispace flip has already happened and an unknown subset of roots has
// been forwarded, so the heap is unusable afterwards — callers must treat it
// as fatal (the VM marks the heap dead and surfaces the error in DeadErrors)
// rather than retry.
var ErrToSpaceExhausted = errors.New("gc: copy space exhausted during collection")

// ErrPreFlip tags collection failures raised *before* the semispace flip:
// nothing has been copied, no forwarding pointer installed, no root
// rewritten — the heap is fully usable. CollectWithMark's rescan and
// live-list walk can fail this way (structural errors such as an unknown
// class ID). Callers detect it with errors.Is and fail the update cleanly
// instead of declaring the heap dead; post-flip failures stay fatal.
var ErrPreFlip = errors.New("heap intact, collection failed before flip")

// preFlipErr wraps err so errors.Is(err, ErrPreFlip) holds.
func preFlipErr(err error) error {
	return fmt.Errorf("%w: %w", ErrPreFlip, err)
}

// Roots enumerates the VM's root set: thread stacks, JTOC reference slots,
// intern-table entries, and native handles. The callback may rewrite each
// value in place (that is how forwarding reaches the roots).
type Roots interface {
	ForEachRoot(fn func(*rt.Value))
}

// RootsFunc adapts a function to Roots.
type RootsFunc func(fn func(*rt.Value))

// ForEachRoot implements Roots.
func (f RootsFunc) ForEachRoot(fn func(*rt.Value)) { f(fn) }

// Pair is one update-log entry: the to-space copy of the old object and the
// uninitialized new-class object.
type Pair struct {
	OldCopy rt.Addr
	New     rt.Addr
}

// Result reports one collection.
type Result struct {
	// Log is the update log (empty for non-DSU collections), in
	// first-encounter order.
	Log []Pair
	// OldForNew caches the old copy for each new object, so a transformer
	// that dereferences a not-yet-transformed object can locate its old
	// version without scanning the log (paper §3.4: "we instead cache a
	// pointer to the old version in the new version").
	OldForNew map[rt.Addr]rt.Addr

	CopiedObjects int
	CopiedWords   int
	// PairsLogged counts DSU pairs recorded in Log — objects the collection
	// *scheduled* for transformation. (It was once called Transformed, which
	// conflated it with the engine-side count of objects whose transformer
	// actually ran; that number lives in core.Stats.)
	PairsLogged int
	// ScratchWords counts old-copy words placed in the scratch region
	// (zero when the heap has none and old copies burn to-space instead).
	ScratchWords int
	Duration     time.Duration

	// Workers is how many copy/scan workers ran (1 for the serial path).
	Workers int
	// WorkerWords is the words copied per worker (nil for the serial path)
	// — the load-balance evidence behind the gcpause experiment.
	WorkerWords []int
	// TLABWaste is the to-space/scratch words abandoned in TLAB tails by a
	// parallel collection (0 for the serial path).
	TLABWaste int
	// Steals counts work-stealing deque pops that took another worker's
	// grey object.
	Steals int64

	// Pause decomposition — uniform across every mode so pausecmp rows
	// compare like with like. The measured phases are disjoint slices of
	// Duration: PauseMark is in-pause instance discovery (the concurrent-
	// relocation pipeline's pre-flip trace; zero when discovery ran outside
	// the pause), PauseRescan is the SATB deletion-log drain + root re-scan
	// a concurrent-mark collection still does inside the pause, and
	// PauseCopy is the in-pause copy work — the whole fused trace+copy for
	// the STW collectors (PauseCopy = Duration there), the sweep+fixup for
	// CollectWithMark, and only the eager pair evacuation + root remap for
	// CollectReloc (whose bulk copy runs in the concurrent drain, reported
	// by RelocStats.Drain instead).
	PauseMark   time.Duration
	PauseRescan time.Duration
	PauseCopy   time.Duration

	// Concurrent-mark bookkeeping (zero unless MarkConcurrent). MarkOutside
	// is the concurrent trace's wall time — work that PR 5 moved *out* of
	// the pause; MarkSetup is the snapshot capture + barrier arm mini-stop.
	MarkConcurrent       bool
	MarkOutside          time.Duration
	MarkSetup            time.Duration
	MarkedObjects int // objects greyed by the concurrent trace (roots included)
	RescanMarked  int // objects the pause rescan additionally marked
	SATBDrained   int // deletion-log entries drained at the pause
	// MarkUpdatedInstances counts updated-class instances attributed by the
	// concurrent trace (root captures included). Instances the pause itself
	// discovers — rescan marks and the allocate-black walk — are not
	// attributed; PairsLogged is the authoritative copied-pair count.
	MarkUpdatedInstances int

	// Relocated marks a CollectReloc result: the world resumed with
	// from-space still live and a concurrent relocation drain in flight.
	// CopiedObjects/CopiedWords then cover only the pause's eager work; the
	// drain's share arrives later in RelocStats.
	Relocated bool
}

// Options tunes a collector.
type Options struct {
	// Workers selects the collection strategy. <=0 or 1 runs the exact
	// serial Cheney path (the default); N>1 runs the parallel copy/scan
	// collector with N workers; AutoWorkers picks runtime.GOMAXPROCS.
	Workers int
	// TLABWords overrides the per-worker allocation-buffer carve size for
	// parallel collections (default 4096, clamped so the worker buffers
	// cannot strand more than ~1/8 of a semispace).
	TLABWords int
	// ConcurrentMark opts the DSU engine into the snapshot-at-the-beginning
	// concurrent mark phase (mark.go): updated-instance discovery runs
	// overlapped with the mutator and the update pause shrinks to
	// rescan + copy + transform. The collector itself only consults it in
	// the engine-facing helpers; plain Collect calls are unaffected, so
	// ConcurrentMark=false preserves today's serial and parallel paths
	// exactly.
	ConcurrentMark bool
	// ConcurrentReloc opts the DSU engine into concurrent relocation
	// (reloc.go): the pause shrinks to discovery + eager pair evacuation +
	// root remap, the world resumes with from-space still live, and the
	// remaining live set is evacuated by background relocator workers plus
	// the mutator's self-healing load barrier. Plain Collect calls are
	// unaffected.
	ConcurrentReloc bool
}

// AutoWorkers selects one collection worker per available CPU.
const AutoWorkers = -1

// Collector is the collection machinery bound to one heap and registry.
type Collector struct {
	Heap *heap.Heap
	Reg  *rt.Registry
	Opts Options

	// Collections counts completed collections.
	Collections int
	// CopiedObjects accumulates objects copied across all collections —
	// the cumulative series behind the govolve_gc_copied_objects_total
	// metric (per-collection numbers live in Result).
	CopiedObjects int

	// Rec, when attached (vm.AttachObs), receives per-worker flight-
	// recorder events: one phase span per copy/scan worker plus a
	// copied-words and steal summary. Nil disables emission entirely.
	Rec *obs.Recorder

	// mark is the in-flight concurrent marker (nil when none — the common
	// case; every STW entry point pays one nil check). pool keeps the mark
	// bitmap, SATB buffer, and worker deques alive across collections so
	// repeated updates allocate no per-cycle scratch.
	mark *Marker
	pool markPool
}

// New builds a serial collector.
func New(h *heap.Heap, reg *rt.Registry) *Collector {
	return &Collector{Heap: h, Reg: reg}
}

// NewWithOptions builds a collector with an explicit strategy.
func NewWithOptions(h *heap.Heap, reg *rt.Registry, opts Options) *Collector {
	return &Collector{Heap: h, Reg: reg, Opts: opts}
}

// EffectiveWorkers resolves Opts.Workers to the worker count a collection
// will actually use.
func (c *Collector) EffectiveWorkers() int {
	w := c.Opts.Workers
	if w == AutoWorkers {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Collect runs a full collection. With dsu set, instances of classes whose
// UpdatedTo field is non-nil are transformed as described in the package
// comment. A collection failure (ErrToSpaceExhausted) leaves the heap
// unusable — the flip already happened and roots are partially forwarded —
// and the VM treats it as fatal OOM (vm.MarkHeapUnusable).
//
// With Opts.Workers > 1 the parallel copy/scan collector runs instead; the
// serial path below is byte-for-byte the original Cheney loop.
func (c *Collector) Collect(roots Roots, dsu bool) (*Result, error) {
	if c.mark != nil {
		// A concurrent mark is in flight but a collection must run now
		// (e.g. the mutator exhausted the heap mid-mark). The flip would
		// move memory under the tracers and invalidate every marked
		// address, so the snapshot is stale: join the workers and discard
		// it before touching anything. The engine observes the abort and
		// restarts the mark against the post-collection heap.
		c.AbortMark()
	}
	if w := c.EffectiveWorkers(); w > 1 {
		return c.collectParallel(roots, dsu, w)
	}
	return c.collectSerial(roots, dsu)
}

func (c *Collector) collectSerial(roots Roots, dsu bool) (*Result, error) {
	start := time.Now()
	h := c.Heap
	c.Rec.Emit(obs.KPhaseBegin, obs.LaneGCWorker(0), 0, "gc copy/scan")
	res := &Result{Workers: 1}
	defer func() {
		c.Rec.Emit(obs.KGCWorkerCopy, obs.LaneGCWorker(0), int64(res.CopiedWords), "")
		c.Rec.Emit(obs.KPhaseEnd, obs.LaneGCWorker(0), int64(res.CopiedWords), "gc copy/scan")
	}()
	if dsu {
		res.OldForNew = make(map[rt.Addr]rt.Addr)
	}
	h.Flip()

	// With a scratch region configured, DSU old copies go there instead of
	// to-space and are reclaimed right after the transformer phase — the
	// paper's §3.5 alternative ("copy the old versions to a special block
	// of memory and reclaim it when the collection completes"). Without
	// one, old copies live in to-space until the next collection, as in
	// the paper's implementation.
	useScratch := dsu && h.HasScratch()
	var scratchObjs []rt.Addr

	var gcErr error
	forward := func(v *rt.Value) {
		if gcErr != nil || !v.IsRef || v.Bits == 0 {
			return
		}
		a := v.Ref()
		if h.InCurrentSpace(a) || h.InScratch(a) {
			return // already copied (to-space object, shell, or old copy)
		}
		if to, ok := h.Forwarded(a); ok {
			v.Bits = uint64(to)
			return
		}
		size := h.ObjectSize(a, c.Reg.ClassByID)
		if dsu && !h.IsArray(a) {
			cls := c.Reg.ClassByID(h.ClassID(a))
			if cls != nil && cls.UpdatedTo != nil {
				newCls := cls.UpdatedTo
				shell, ok1 := h.AllocObject(newCls)
				var oldCopy rt.Addr
				var ok2 bool
				if useScratch {
					oldCopy, ok2 = h.ScratchCopy(a, size)
					if ok2 {
						scratchObjs = append(scratchObjs, oldCopy)
						res.ScratchWords += size
					}
				} else {
					oldCopy, ok2 = h.Copy(a, size)
				}
				if !ok1 || !ok2 {
					gcErr = fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted)
					return
				}
				h.SetForward(a, shell)
				res.Log = append(res.Log, Pair{OldCopy: oldCopy, New: shell})
				res.OldForNew[shell] = oldCopy
				res.CopiedObjects += 2
				res.CopiedWords += size + newCls.Size
				res.PairsLogged++
				v.Bits = uint64(shell)
				return
			}
		}
		to, ok := h.Copy(a, size)
		if !ok {
			gcErr = ErrToSpaceExhausted
			return
		}
		h.SetForward(a, to)
		res.CopiedObjects++
		res.CopiedWords += size
		v.Bits = uint64(to)
	}

	// scanObj forwards every reference inside one object.
	scanObj := func(a rt.Addr) error {
		if h.IsArray(a) {
			if h.ArrayElemIsRef(a) {
				for i := 0; i < h.ArrayLen(a); i++ {
					v := h.Elem(a, i)
					forward(&v)
					h.SetElem(a, i, v)
				}
			}
			return nil
		}
		cls := c.Reg.ClassByID(h.ClassID(a))
		if cls == nil {
			return fmt.Errorf("gc: object @%d with unknown class id %d", a, h.ClassID(a))
		}
		for i, isRef := range cls.RefMap {
			if !isRef {
				continue
			}
			v := h.FieldValue(a, rt.HeaderWords+i, true)
			forward(&v)
			h.SetFieldValue(a, rt.HeaderWords+i, v)
		}
		return nil
	}

	// Roots first, then a Cheney scan of to-space interleaved with the
	// scratch old copies. Old copies are scanned like ordinary objects —
	// that is what lets transformers dereference an old object's fields
	// and see transformed referents. New shells scan trivially (all
	// fields are zero).
	scan := h.ScanStart()
	scratchCursor := 0
	roots.ForEachRoot(forward)
	for gcErr == nil {
		progressed := false
		for scan < h.AllocPointer() && gcErr == nil {
			size := h.ObjectSize(scan, c.Reg.ClassByID)
			if err := scanObj(scan); err != nil {
				return nil, err
			}
			scan += rt.Addr(size)
			progressed = true
		}
		for scratchCursor < len(scratchObjs) && gcErr == nil {
			if err := scanObj(scratchObjs[scratchCursor]); err != nil {
				return nil, err
			}
			scratchCursor++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	if gcErr != nil {
		return nil, gcErr
	}
	c.Collections++
	c.CopiedObjects += res.CopiedObjects
	res.Duration = time.Since(start)
	res.PauseCopy = res.Duration // STW: the trace is fused with the copy
	return res, nil
}
