package gc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"govolve/internal/obs"
	"govolve/internal/rt"
)

// The concurrent snapshot-at-the-beginning (SATB) mark phase. JVOLVE's
// update pause is a full collection that *finds* every instance of an
// updated class before copying and transforming it; PR 3 parallelized the
// copy inside the window, but discovery still ran in the pause. The Marker
// moves discovery out: when an update request arrives, the engine takes a
// logical heap snapshot (root values captured while the mutator is parked
// between slices, allocation watermark recorded, heap.ArmSATB deletion
// barrier armed) and mark workers trace the snapshot graph concurrently
// with the mutator, on the same work-stealing deques and ChunkedRoots
// partitioning as the PR 3 collector. At the DSU safe point the collector
// consumes the mark result (CollectWithMark): it drains the SATB deletion
// log and re-scans roots — the only tracing left inside the pause — then
// copies exactly the marked ∪ post-watermark objects.
//
// Correctness (the classic SATB theorem, specialized to this VM):
//
//   - Every object reachable at snapshot time ends up marked: the trace can
//     only miss an object if the mutator deletes the edge the trace would
//     have used, and the armed heap.Store barrier logs every such deletion.
//     Root stores need no barrier because root *values* were captured
//     up-front.
//   - Objects allocated after the watermark are implicitly live
//     (allocate-black); the pause walks [watermark, alloc) linearly.
//   - The barrier stays armed from snapshot until the pause rescan runs.
//     Trace completion alone does NOT establish "reachable ⊆ marked ∪
//     post-watermark": objects hidden behind logged deletions are unmarked
//     until the pause drains the log, and while any such log-only-reachable
//     object X exists the mutator can load X's child Z, store it into an
//     already-marked (black) object, and sever the unmarked paths to Z. If
//     the barrier were off, that severing would go unlogged, the pause
//     rescan (which never revisits marked objects) would miss Z, and fixup
//     would fail on a legal program. So SealMark leaves the barrier armed;
//     only CollectWithMark (inside the pause, after the mutator stopped)
//     and the abort paths disarm. The mutator pays the armed-barrier tax
//     during a blocked safe-point wait — that is the price of soundness.
//
// The marked set may include *floating garbage* — objects that died during
// the mark. They are copied (and, for updated classes, paired and
// transformed) once more than strictly necessary and become unreachable
// again immediately; the next collection reclaims them. That is the
// standard mostly-concurrent trade: a little extra copying for a pause
// that excludes the whole discovery trace.
//
// Lifecycle discipline: StartMark / SealMark / AbortMark / CollectWithMark
// all run on the mutator goroutine (the VM is a green-thread machine —
// exactly one OS goroutine mutates the heap, and the DSU engine runs on
// it). Only the mark workers are concurrent, and they are joined (wg.Wait)
// before any pause-time code touches the bitmap, so the race detector sees
// clean happens-before edges everywhere.

// Marker is one in-flight (or completed) concurrent mark.
type Marker struct {
	c          *Collector
	lo         rt.Addr // current-space base at snapshot time
	watermark  rt.Addr // allocation pointer at snapshot time
	workers    []*markWorker
	deques     []*deque
	updatedIDs map[int]bool // old-class IDs named by the pending update

	bitmap []uint32 // one bit per heap word address < watermark; CAS-set

	// collectAddrs (set from Opts.ConcurrentReloc) makes the trace record
	// the addresses of updated-class instances, not just their counts — the
	// CollectReloc pause evacuates exactly that set eagerly instead of
	// sweeping the whole marked list.
	collectAddrs bool

	idle  atomic.Int32
	done  atomic.Bool
	abort atomic.Bool
	wg    sync.WaitGroup

	// failErr records a structural error found by a worker (unknown class
	// ID); the marker aborts itself and the engine falls back to STW.
	failMu  sync.Mutex
	failErr error

	start   time.Time
	setup   time.Duration // snapshot + arm + spawn (a mini-pause)
	traceNS atomic.Int64  // wall-clock mark time, stored by the finisher
	sealed  bool          // mutator goroutine: workers joined, stats merged
	aborted bool          // mutator goroutine: result must not be consumed
	satb    []rt.Addr     // deletion log, stashed at pause/abort disarm time

	// Merged at seal time. updatedByClass is the concurrent trace's
	// per-class instance attribution (root captures included — the root
	// loop greys through the same worker path); instances the *pause*
	// discovers (SATB/rescan marks, allocate-black walk) are not attributed
	// here. The authoritative copied set is Result.PairsLogged.
	markedObjects    int
	updatedInstances int
	updatedByClass   map[int]int
	updatedAddrs     []rt.Addr // merged per-worker addrs (collectAddrs only)
	steals           int64
}

// markWorker is one concurrent tracer.
type markWorker struct {
	m  *Marker
	id int
	dq *deque

	marked       int
	updated      map[int]int // old-class ID → instances discovered (lazy)
	updatedAddrs []rt.Addr   // their addresses, when the marker collects them
	steals       int64
}

// markBitmapFor returns a cleared bitmap covering the snapshot region
// [lo, watermark) — bit indexes are relative to lo, so the bitmap's size
// depends only on the words in use, not on which semispace is current —
// reusing the pooled backing array when it is large enough (the storm
// harness applies hundreds of updates against one heap; per-cycle scratch
// must not be re-allocated every time).
func (c *Collector) markBitmapFor(lo, watermark rt.Addr) []uint32 {
	n := int((watermark-lo)>>5) + 1
	if cap(c.pool.bitmap) < n {
		c.pool.bitmap = make([]uint32, n)
	}
	bm := c.pool.bitmap[:n]
	clear(bm)
	return bm
}

// markPool holds the per-collection scratch the marker reuses across
// updates: the mark bitmap, the SATB deletion-log buffer, and the worker
// deques (whose grey-stack backing arrays persist).
type markPool struct {
	bitmap  []uint32
	satb    []rt.Addr
	deques  []*deque
	entries []sweepEntry // sweep-phase live list (CollectWithMark)
}

// recycleMark returns a marker's scratch to the pool. Callers guarantee the
// workers have been joined; a stale *Marker held by the engine only ever
// reads its aborted/sealed flags afterwards.
func (c *Collector) recycleMark(m *Marker) {
	c.pool.bitmap = m.bitmap[:0]
	if m.satb != nil {
		c.pool.satb = m.satb[:0]
	}
	c.pool.deques = m.deques
	for _, d := range c.pool.deques {
		d.buf = d.buf[:0]
		d.head = 0
		d.size.Store(0)
	}
}

// markDeques returns w empty deques, pooled.
func (c *Collector) markDeques(w int) []*deque {
	ds := c.pool.deques
	c.pool.deques = nil
	for len(ds) < w {
		ds = append(ds, &deque{})
	}
	return ds[:w]
}

// trySetMark CAS-sets the mark bit for a, returning true if this call
// transitioned it (a CAS loop rather than atomic.Or keeps the word-level
// protocol portable). Exactly one marker greys each object. Bit indexes are
// relative to the snapshot base; callers bounds-check [lo, watermark) first.
func (m *Marker) trySetMark(a rt.Addr) bool {
	a -= m.lo
	w := &m.bitmap[a>>5]
	bit := uint32(1) << (a & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, old, old|bit) {
			return true
		}
	}
}

// setMarkSerial is the pause-time (single-threaded) bit set; isMarked the
// pause-time query. The workers were joined before either is called.
func (m *Marker) setMarkSerial(a rt.Addr) bool {
	a -= m.lo
	w := &m.bitmap[a>>5]
	bit := uint32(1) << (a & 31)
	if *w&bit != 0 {
		return false
	}
	*w |= bit
	return true
}

func (m *Marker) isMarked(a rt.Addr) bool {
	a -= m.lo
	return m.bitmap[a>>5]&(uint32(1)<<(a&31)) != 0
}

// StartMark snapshots the heap and begins a concurrent mark: root values
// are captured into the worker deques (the mutator is parked between
// scheduling slices at this instant, so the capture is a consistent
// snapshot), the SATB deletion barrier is armed, and EffectiveWorkers mark
// workers start tracing concurrently with the mutator. updatedIDs names the
// old-class IDs of the pending update so the mark can report the per-class
// instance set it discovers. Any previous marker is aborted first.
func (c *Collector) StartMark(roots Roots, updatedIDs map[int]bool) *Marker {
	if c.mark != nil {
		c.AbortMark()
	}
	start := time.Now()
	h := c.Heap
	w := c.EffectiveWorkers()
	m := &Marker{
		c:            c,
		lo:           h.ScanStart(),
		updatedIDs:   updatedIDs,
		deques:       c.markDeques(w),
		start:        start,
		collectAddrs: c.Opts.ConcurrentReloc,
	}
	m.watermark = h.ArmSATB(c.pool.satb)
	c.pool.satb = nil
	m.bitmap = c.markBitmapFor(m.lo, m.watermark)
	m.workers = make([]*markWorker, w)
	for i := range m.workers {
		m.workers[i] = &markWorker{m: m, id: i, dq: m.deques[i]}
	}

	// Capture the root snapshot: every non-null snapshot-region root value
	// is greyed and dealt round-robin across the worker deques. Greying
	// goes through the workers' grey() — not a bare trySetMark — so
	// root-referenced instances of updated classes get the same per-class
	// attribution as trace-discovered ones (the workers have not spawned
	// yet, so these single-threaded calls are race-free; SealMark merges
	// the counters after the join).
	i := 0
	roots.ForEachRoot(func(v *rt.Value) {
		if !v.IsRef {
			return
		}
		m.workers[i%w].grey(v.Ref())
		i++
	})

	c.Rec.Emit(obs.KPhaseBegin, obs.LaneMark, int64(w), "concurrent mark")
	m.wg.Add(w)
	for _, mw := range m.workers {
		go mw.run()
	}
	m.setup = time.Since(start)
	c.mark = m
	return m
}

// Done reports whether the concurrent trace has terminated (successfully or
// via abort). Safe from the mutator goroutine while workers run.
func (m *Marker) Done() bool { return m.done.Load() || m.abort.Load() }

// Aborted reports whether the marker's result is unusable (a collection
// intervened, a worker failed, or the engine gave up). Mutator goroutine.
func (m *Marker) Aborted() bool { return m.aborted || m.abort.Load() }

// Err returns the structural error that aborted the mark, if any.
func (m *Marker) Err() error {
	m.failMu.Lock()
	defer m.failMu.Unlock()
	return m.failErr
}

func (m *Marker) fail(err error) {
	m.failMu.Lock()
	if m.failErr == nil {
		m.failErr = err
	}
	m.failMu.Unlock()
	m.abort.Store(true)
}

// SealMark finalizes a completed mark: joins the workers and merges
// per-worker statistics. It is idempotent and is called from the mutator
// goroutine the moment Done() is observed.
//
// The SATB barrier stays ARMED. Until the pause drains the deletion log
// and rescans roots, "reachable ⊆ marked ∪ post-watermark" does not hold:
// an object reachable only through the log is still unmarked, and a
// mutator running between seal and pause could move its children behind
// black objects and sever the unmarked paths — unlogged, if the barrier
// were off, and invisible to the rescan, which never revisits marked
// objects. CollectWithMark disarms inside the pause; AbortMark disarms on
// the failure paths. Returns false if the mark aborted instead of
// completing.
func (c *Collector) SealMark(m *Marker) bool {
	if m.sealed || m.aborted {
		return m.sealed && !m.aborted
	}
	m.wg.Wait()
	if m.abort.Load() {
		m.satb = c.Heap.DisarmSATB()
		m.aborted = true
		if !m.done.Load() {
			c.Rec.Emit(obs.KPhaseEnd, obs.LaneMark, 0, "concurrent mark")
		}
		if c.mark == m {
			c.mark = nil
			c.recycleMark(m)
		}
		return false
	}
	for _, mw := range m.workers {
		m.markedObjects += mw.marked
		m.steals += mw.steals
		m.updatedAddrs = append(m.updatedAddrs, mw.updatedAddrs...)
		for id, n := range mw.updated {
			if m.updatedByClass == nil {
				m.updatedByClass = make(map[int]int)
			}
			m.updatedByClass[id] += n
			m.updatedInstances += n
		}
	}
	m.sealed = true
	return true
}

// AbortMark discards the active marker: workers are signalled and joined,
// the barrier is disarmed, and the pooled scratch is recycled. It is called
// by Collect when a collection must run while a mark is in flight (the flip
// would invalidate every marked address and move memory under the tracers),
// and by the engine when an update resolves without consuming its snapshot
// — the "discard a stale snapshot" abort path.
func (c *Collector) AbortMark() {
	m := c.mark
	if m == nil {
		return
	}
	c.mark = nil
	m.abort.Store(true)
	m.wg.Wait()
	// Sealed or not, an attached marker keeps the barrier armed until the
	// pause consumes it — so the abort path always disarms. (A marker that
	// aborted inside SealMark already disarmed, but it also detached itself
	// from c.mark, so it never reaches here.)
	m.satb = c.Heap.DisarmSATB()
	if !m.done.Load() {
		// The finisher worker closes the span at trace completion; only an
		// interrupted trace needs its span closed here. done is stable after
		// wg.Wait.
		c.Rec.Emit(obs.KPhaseEnd, obs.LaneMark, int64(m.markedObjects), "concurrent mark")
	}
	m.aborted = true
	c.recycleMark(m)
}

// MarkActive reports whether a marker is attached to the collector.
func (c *Collector) MarkActive() bool { return c.mark != nil }

// MarkReady reports whether the active marker has been sealed and can feed
// CollectWithMark.
func (c *Collector) MarkReady() bool { return c.mark != nil && c.mark.sealed }

// run is one worker's trace loop: drain the local deque, steal when empty,
// terminate via the PR 3 idle-counter protocol. Every popped address has
// its mark bit already set (the bit is set at grey time), so each object is
// scanned exactly once across all workers.
func (mw *markWorker) run() {
	m := mw.m
	defer m.wg.Done()
	n := len(m.deques)
	for {
		if m.abort.Load() || m.done.Load() {
			return
		}
		if a, ok := mw.dq.pop(); ok {
			mw.scan(a)
			continue
		}
		if a, ok := mw.steal(); ok {
			mw.scan(a)
			continue
		}
		m.idle.Add(1)
		for {
			if m.abort.Load() || m.done.Load() {
				return
			}
			if mw.anyWork() {
				m.idle.Add(-1)
				break
			}
			if m.idle.Load() == int32(n) {
				// Last worker idle: the trace is complete. Record the
				// wall-clock mark time and the end of the Perfetto "mark"
				// lane span here, at the true completion instant, not when
				// the engine happens to poll. Reading the other workers'
				// plain counters is safe: every worker is idle (its counter
				// writes happen-before its idle.Add, which this goroutine
				// observed), and no worker can leave idle once all deques
				// are empty.
				m.traceNS.Store(int64(time.Since(m.start)))
				m.emitEnd()
				m.done.Store(true)
				return
			}
			runtime.Gosched()
		}
	}
}

// emitEnd closes the mark-lane span (recorder is mutex-protected, so a
// worker-goroutine emission is safe).
func (m *Marker) emitEnd() {
	total := 0
	for _, mw := range m.workers {
		total += mw.marked
	}
	m.c.Rec.Emit(obs.KPhaseEnd, obs.LaneMark, int64(total), "concurrent mark")
}

func (mw *markWorker) steal() (rt.Addr, bool) {
	m := mw.m
	n := len(m.deques)
	for k := 1; k < n; k++ {
		d := m.deques[(mw.id+k)%n]
		if d.size.Load() == 0 {
			continue
		}
		if a, ok := d.steal(); ok {
			mw.steals++
			return a, true
		}
	}
	return 0, false
}

func (mw *markWorker) anyWork() bool {
	for _, d := range mw.m.deques {
		if d.size.Load() > 0 {
			return true
		}
	}
	return false
}

// scan greys every snapshot-region object referenced by a. Headers and
// array lengths of snapshot-region objects are immutable during the mark
// (written before the workers spawned), so plain reads are safe; ref slots
// are concurrently written by the mutator's armed barrier, so they go
// through the atomic RefSlotLoad.
func (mw *markWorker) scan(a rt.Addr) {
	m := mw.m
	h := m.c.Heap
	if h.IsArray(a) {
		if h.ArrayElemIsRef(a) {
			n := h.ArrayLen(a)
			for i := 0; i < n; i++ {
				mw.grey(rt.Addr(h.RefSlotLoad(a + rt.HeaderWords + rt.Addr(i))))
			}
		}
		return
	}
	cls := m.c.Reg.ClassByID(h.ClassID(a))
	if cls == nil {
		m.fail(fmt.Errorf("gc: concurrent mark: object @%d with unknown class id %d", a, h.ClassID(a)))
		return
	}
	for i, isRef := range cls.RefMap {
		if !isRef {
			continue
		}
		mw.grey(rt.Addr(h.RefSlotLoad(a + rt.HeaderWords + rt.Addr(i))))
	}
}

// grey marks and enqueues one snapshot-region address. References at or
// above the watermark are allocate-black (never scanned — the pause walks
// that region wholesale), and everything outside the current space (null,
// or a scratch address, which cannot occur between updates) is ignored.
func (mw *markWorker) grey(a rt.Addr) {
	m := mw.m
	if a == 0 || a < m.lo || a >= m.watermark {
		return
	}
	if !m.trySetMark(a) {
		return
	}
	mw.marked++
	h := m.c.Heap
	if m.updatedIDs != nil && !h.IsArray(a) {
		if id := h.ClassID(a); m.updatedIDs[id] {
			if mw.updated == nil {
				mw.updated = make(map[int]int)
			}
			mw.updated[id]++
			if m.collectAddrs {
				mw.updatedAddrs = append(mw.updatedAddrs, a)
			}
		}
	}
	mw.dq.push(a)
}
