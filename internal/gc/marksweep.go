package gc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"govolve/internal/heap"
	"govolve/internal/obs"
	"govolve/internal/rt"
)

// CollectWithMark is the pause half of a concurrent-mark DSU collection: it
// consumes the sealed Marker and runs only the work that cannot overlap the
// mutator. Where the STW collectors trace the whole heap inside the pause,
// this path:
//
//  1. rescan  — drains the SATB deletion log and re-scans the root set,
//     transitively marking any snapshot-region object the concurrent trace
//     has not seen (typically a handful: values the mutator moved around
//     while the trace ran). This is the only in-pause tracing.
//  2. sweep   — walks from-space linearly (a bump region is self-parsing),
//     collecting every marked object plus everything in [watermark, alloc)
//     (allocate-black), in address order. Then flips and copies exactly
//     that list: updated-class instances get the usual pair treatment
//     (shell + old copy, forwarding pointer to the shell), everything else
//     a plain evacuation. With Workers > 1 the copy fans out over the PR 3
//     TLAB machinery — no CAS is needed because the entry list is
//     partitioned, so no two workers ever touch the same object.
//  3. fixup   — rewrites every ref slot of the copies (and the scratch old
//     copies) and every root through the forwarding pointers. A live ref
//     to an unforwarded object means the SATB invariant was violated; the
//     collection fails loudly rather than corrupting the heap.
//
// The result is bit-compatible with the STW collectors' (same Pair/
// OldForNew contract, update log sorted by new-shell address) plus the
// pause decomposition: PauseRescan + PauseCopy ≈ Duration, PauseMark = 0,
// with the concurrent trace's wall time reported outside the pause in
// MarkOutside.
//
// If the marker is missing, unsealed, or aborted, it falls back to the
// ordinary Collect — the engine relies on that for the bounded-restart
// fallback path.
func (c *Collector) CollectWithMark(roots Roots, dsu bool) (*Result, error) {
	m := c.mark
	if m == nil || !m.sealed || m.aborted {
		return c.Collect(roots, dsu)
	}
	c.mark = nil
	defer c.recycleMark(m)

	start := time.Now()
	h := c.Heap
	// The barrier stayed armed through the blocked safe-point wait (see
	// SealMark); the mutator is stopped now, so disarm and take the full
	// deletion log — every snapshot-region edge severed since the snapshot
	// is in it, which is exactly what makes the rescan below sound.
	m.satb = h.DisarmSATB()
	res := &Result{
		Workers:              c.EffectiveWorkers(),
		MarkConcurrent:       true,
		MarkOutside:          time.Duration(m.traceNS.Load()),
		MarkSetup:            m.setup,
		MarkedObjects:        m.markedObjects,
		SATBDrained:          len(m.satb),
		MarkUpdatedInstances: m.updatedInstances,
		Steals:               m.steals,
	}
	if dsu {
		res.OldForNew = make(map[rt.Addr]rt.Addr)
	}

	// --- 1. rescan ---------------------------------------------------------
	tRescan := time.Now()
	var stack []rt.Addr
	pushIf := func(w rt.Addr) {
		if w == 0 || w < m.lo || w >= m.watermark {
			return
		}
		if m.setMarkSerial(w) {
			stack = append(stack, w)
			res.RescanMarked++
		}
	}
	for _, w := range m.satb {
		pushIf(w)
	}
	roots.ForEachRoot(func(v *rt.Value) {
		if v.IsRef {
			pushIf(v.Ref())
		}
	})
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.IsArray(a) {
			if h.ArrayElemIsRef(a) {
				for i := 0; i < h.ArrayLen(a); i++ {
					pushIf(h.Elem(a, i).Ref())
				}
			}
			continue
		}
		cls := c.Reg.ClassByID(h.ClassID(a))
		if cls == nil {
			return nil, preFlipErr(fmt.Errorf("gc: rescan: object @%d with unknown class id %d", a, h.ClassID(a)))
		}
		for i, isRef := range cls.RefMap {
			if isRef {
				pushIf(h.FieldValue(a, rt.HeaderWords+i, true).Ref())
			}
		}
	}
	res.PauseRescan = time.Since(tRescan)

	// --- 2. sweep: build the live list, then flip and copy -----------------
	tCopy := time.Now()
	entries, err := c.sweepList(m)
	if err != nil {
		// Nothing has been flipped or forwarded yet: the heap is intact, so
		// surface the structural error without poisoning it.
		return nil, preFlipErr(err)
	}
	h.Flip()
	useScratch := dsu && h.HasScratch()
	if res.Workers > 1 {
		err = c.sweepParallel(entries, dsu, useScratch, res)
	} else {
		err = c.sweepSerial(entries, dsu, useScratch, res)
	}
	if err != nil {
		return nil, err // flip happened: heap unusable, caller marks it fatal
	}

	// --- 3. fixup: rewrite refs through the forwarding pointers ------------
	if res.Workers > 1 {
		err = c.fixupParallel(entries, roots, res.Workers)
	} else {
		err = c.fixupSerial(entries, roots)
	}
	if err != nil {
		return nil, err
	}
	res.PauseCopy = time.Since(tCopy)
	c.pool.entries = entries[:0] // recycle the live list for the next cycle

	sort.Slice(res.Log, func(i, j int) bool { return res.Log[i].New < res.Log[j].New })
	for _, p := range res.Log {
		res.OldForNew[p.New] = p.OldCopy
	}
	res.PairsLogged = len(res.Log)

	c.Collections++
	c.CopiedObjects += res.CopiedObjects
	res.Duration = time.Since(start)
	return res, nil
}

// sweepEntry is one object scheduled for evacuation, with its copy
// destinations filled in during the copy phase (disjoint indices, so the
// parallel sweep needs no synchronization on the slice).
type sweepEntry struct {
	addr rt.Addr
	size int32
	// newCls is non-nil for a DSU pair (old class's UpdatedTo); new is then
	// the shell and oldCopy the preserved old version. For plain objects
	// new is the evacuated copy and oldCopy is 0.
	newCls  *rt.Class
	new     rt.Addr
	oldCopy rt.Addr
}

// sweepList walks from-space linearly and returns, in address order, every
// marked object plus the whole allocate-black region [watermark, alloc).
// A bump region is self-parsing except for the dead gaps earlier parallel
// collections left behind (abandoned TLAB tails) — the walk consults the
// heap's hole list to step over those. It runs before the flip and mutates
// nothing, so any error here leaves the heap fully usable (the caller falls
// back or fails the update cleanly).
func (c *Collector) sweepList(m *Marker) ([]sweepEntry, error) {
	h := c.Heap
	entries := c.pool.entries[:0]
	holes := h.Holes()
	objSize := func(a rt.Addr) (int, error) {
		if h.IsArray(a) {
			return rt.HeaderWords + h.ArrayLen(a), nil
		}
		cls := c.Reg.ClassByID(h.ClassID(a))
		if cls == nil {
			return 0, fmt.Errorf("gc: sweep: object @%d with unknown class id %d", a, h.ClassID(a))
		}
		return cls.Size, nil
	}
	skipHole := func(a rt.Addr) (rt.Addr, bool) {
		for len(holes) > 0 && holes[0].Addr < a {
			holes = holes[1:] // stale entry below the walk — cannot happen, but stay safe
		}
		if len(holes) > 0 && holes[0].Addr == a {
			a += rt.Addr(holes[0].Size)
			holes = holes[1:]
			return a, true
		}
		return a, false
	}
	for a := m.lo; a < m.watermark; {
		if na, skipped := skipHole(a); skipped {
			a = na
			continue
		}
		size, err := objSize(a)
		if err != nil {
			return nil, err
		}
		if m.isMarked(a) {
			entries = append(entries, sweepEntry{addr: a, size: int32(size)})
		}
		a += rt.Addr(size)
	}
	for a := m.watermark; a < h.AllocPointer(); {
		if na, skipped := skipHole(a); skipped {
			a = na
			continue
		}
		size, err := objSize(a)
		if err != nil {
			return nil, err
		}
		entries = append(entries, sweepEntry{addr: a, size: int32(size)})
		a += rt.Addr(size)
	}
	return entries, nil
}

// resolvePair fills e.newCls when the entry is an instance of an updated
// class (UpdatedTo is set during the install phase, which precedes the
// collection inside the same pause).
func (c *Collector) resolvePair(e *sweepEntry, dsu bool) {
	if !dsu || c.Heap.IsArray(e.addr) {
		return
	}
	cls := c.Reg.ClassByID(c.Heap.ClassID(e.addr))
	if cls != nil && cls.UpdatedTo != nil {
		e.newCls = cls.UpdatedTo
	}
}

// sweepSerial copies the entry list with the global bump pointer — address
// order in, address order out, so the to-space layout is as compact and
// deterministic as the serial Cheney path's.
func (c *Collector) sweepSerial(entries []sweepEntry, dsu, useScratch bool, res *Result) error {
	h := c.Heap
	c.Rec.Emit(obs.KPhaseBegin, obs.LaneGCWorker(0), 0, "gc sweep/fixup")
	defer func() {
		c.Rec.Emit(obs.KGCWorkerCopy, obs.LaneGCWorker(0), int64(res.CopiedWords), "")
		c.Rec.Emit(obs.KPhaseEnd, obs.LaneGCWorker(0), int64(res.CopiedWords), "gc sweep/fixup")
	}()
	for i := range entries {
		e := &entries[i]
		c.resolvePair(e, dsu)
		size := int(e.size)
		if e.newCls != nil {
			shell, ok1 := h.AllocObject(e.newCls)
			var oldCopy rt.Addr
			var ok2 bool
			if useScratch {
				oldCopy, ok2 = h.ScratchCopy(e.addr, size)
				if ok2 {
					res.ScratchWords += size
				}
			} else {
				oldCopy, ok2 = h.Copy(e.addr, size)
			}
			if !ok1 || !ok2 {
				return fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted)
			}
			h.SetForward(e.addr, shell)
			e.new, e.oldCopy = shell, oldCopy
			res.Log = append(res.Log, Pair{OldCopy: oldCopy, New: shell})
			res.CopiedObjects += 2
			res.CopiedWords += size + e.newCls.Size
			continue
		}
		to, ok := h.Copy(e.addr, size)
		if !ok {
			return ErrToSpaceExhausted
		}
		h.SetForward(e.addr, to)
		e.new = to
		res.CopiedObjects++
		res.CopiedWords += size
	}
	return nil
}

// sweepParallel fans the copy out over the PR 3 TLAB machinery. The entry
// list is dealt in contiguous chunks, one per worker; every object is owned
// by exactly one worker, so forwarding pointers are plain stores and the
// only shared state is the heap's block carve (under its mutex).
func (c *Collector) sweepParallel(entries []sweepEntry, dsu, useScratch bool, res *Result) error {
	h := c.Heap
	workers := res.Workers
	tlabSize := c.tlabWords(workers)
	per := (len(entries) + workers - 1) / workers

	type swWorker struct {
		log           []Pair
		copiedObjects int
		copiedWords   int
		scratchWords  int
		err           error
		waste         int
	}
	ws := make([]swWorker, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(entries) {
			lo = len(entries)
		}
		if hi > len(entries) {
			hi = len(entries)
		}
		wg.Add(1)
		go func(i int, chunk []sweepEntry) {
			defer wg.Done()
			w := &ws[i]
			c.Rec.Emit(obs.KPhaseBegin, obs.LaneGCWorker(i), 0, "gc sweep")
			tlab := h.NewTLAB(tlabSize, false)
			var stlab *heap.TLAB
			if useScratch {
				stlab = h.NewTLAB(tlabSize, true)
			}
			for j := range chunk {
				e := &chunk[j]
				c.resolvePair(e, dsu)
				size := int(e.size)
				if e.newCls != nil {
					shell, ok1 := tlab.AllocZeroed(e.newCls.Size)
					var oldCopy rt.Addr
					var ok2 bool
					if useScratch {
						oldCopy, ok2 = stlab.Alloc(size)
						if ok2 {
							w.scratchWords += size
						}
					} else {
						oldCopy, ok2 = tlab.Alloc(size)
					}
					if !ok1 || !ok2 {
						w.err = fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted)
						break
					}
					h.SetWord(shell, uint64(e.newCls.ID))
					h.CopyWords(oldCopy, e.addr, size)
					h.SetForward(e.addr, shell)
					e.new, e.oldCopy = shell, oldCopy
					w.log = append(w.log, Pair{OldCopy: oldCopy, New: shell})
					w.copiedObjects += 2
					w.copiedWords += size + e.newCls.Size
					continue
				}
				to, ok := tlab.Alloc(size)
				if !ok {
					w.err = ErrToSpaceExhausted
					break
				}
				h.CopyWords(to, e.addr, size)
				h.SetForward(e.addr, to)
				e.new = to
				w.copiedObjects++
				w.copiedWords += size
			}
			tlab.Retire()
			w.waste += tlab.Waste
			if stlab != nil {
				stlab.Retire()
				w.waste += stlab.Waste
			}
			c.Rec.Emit(obs.KGCWorkerCopy, obs.LaneGCWorker(i), int64(w.copiedWords), "")
			c.Rec.Emit(obs.KPhaseEnd, obs.LaneGCWorker(i), int64(w.copiedWords), "gc sweep")
		}(i, entries[lo:hi])
	}
	wg.Wait()

	res.WorkerWords = make([]int, workers)
	for i := range ws {
		w := &ws[i]
		if w.err != nil {
			return w.err
		}
		res.Log = append(res.Log, w.log...)
		res.CopiedObjects += w.copiedObjects
		res.CopiedWords += w.copiedWords
		res.ScratchWords += w.scratchWords
		res.TLABWaste += w.waste
		res.WorkerWords[i] = w.copiedWords
	}
	return nil
}

// fixTarget decides which copy of an entry needs its ref slots rewritten:
// the evacuated object for plain entries, the old copy for DSU pairs (the
// shell is all zeros — its transformer fills it in).
func (e *sweepEntry) fixTarget() rt.Addr {
	if e.newCls != nil {
		return e.oldCopy
	}
	return e.new
}

// fixupObj rewrites every ref slot of one copied object through the
// from-space forwarding pointers. An unforwarded target means a live object
// escaped the mark — the SATB invariant was violated — and the collection
// fails rather than leaving a dangling from-space reference.
func (c *Collector) fixupObj(a rt.Addr) error {
	h := c.Heap
	fix := func(w rt.Addr) (rt.Addr, error) {
		if w == 0 {
			return 0, nil
		}
		if to, ok := h.Forwarded(w); ok {
			return to, nil
		}
		return 0, fmt.Errorf("gc: fixup: copy @%d references unmarked object @%d (SATB invariant violated)", a, w)
	}
	if h.IsArray(a) {
		if h.ArrayElemIsRef(a) {
			for i := 0; i < h.ArrayLen(a); i++ {
				to, err := fix(h.Elem(a, i).Ref())
				if err != nil {
					return err
				}
				h.SetElem(a, i, rt.RefVal(to))
			}
		}
		return nil
	}
	cls := c.Reg.ClassByID(h.ClassID(a))
	if cls == nil {
		return fmt.Errorf("gc: fixup: object @%d with unknown class id %d", a, h.ClassID(a))
	}
	for i, isRef := range cls.RefMap {
		if !isRef {
			continue
		}
		to, err := fix(h.FieldValue(a, rt.HeaderWords+i, true).Ref())
		if err != nil {
			return err
		}
		h.SetFieldValue(a, rt.HeaderWords+i, rt.RefVal(to))
	}
	return nil
}

// fixupRoots rewrites one root enumerator through the forwarding pointers.
func (c *Collector) fixupRoots(roots Roots) error {
	h := c.Heap
	var firstErr error
	roots.ForEachRoot(func(v *rt.Value) {
		if firstErr != nil || !v.IsRef || v.Bits == 0 {
			return
		}
		if to, ok := h.Forwarded(v.Ref()); ok {
			v.Bits = uint64(to)
			return
		}
		firstErr = fmt.Errorf("gc: fixup: root references unmarked object @%d (SATB invariant violated)", v.Ref())
	})
	return firstErr
}

func (c *Collector) fixupSerial(entries []sweepEntry, roots Roots) error {
	for i := range entries {
		if err := c.fixupObj(entries[i].fixTarget()); err != nil {
			return err
		}
	}
	return c.fixupRoots(roots)
}

// fixupParallel rewrites refs with the same entry partitioning as the
// parallel sweep plus the VM's disjoint root chunks. All forwarding
// pointers were installed before the sweep's wg.Wait barrier, so plain
// header reads are ordered; writes stay disjoint per chunk.
func (c *Collector) fixupParallel(entries []sweepEntry, roots Roots, workers int) error {
	var chunks []Roots
	if cr, ok := roots.(ChunkedRoots); ok {
		chunks = cr.RootChunks(workers)
	} else {
		chunks = splitRoots(roots, workers)
	}
	per := (len(entries) + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(entries) {
			lo = len(entries)
		}
		if hi > len(entries) {
			hi = len(entries)
		}
		wg.Add(1)
		go func(i int, chunk []sweepEntry, rts Roots) {
			defer wg.Done()
			for j := range chunk {
				if err := c.fixupObj(chunk[j].fixTarget()); err != nil {
					errs[i] = err
					return
				}
			}
			if rts != nil {
				errs[i] = c.fixupRoots(rts)
			}
		}(i, entries[lo:hi], pickChunk(chunks, i))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func pickChunk(chunks []Roots, i int) Roots {
	if i < len(chunks) {
		return chunks[i]
	}
	return nil
}
