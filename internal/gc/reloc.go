package gc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govolve/internal/heap"
	"govolve/internal/obs"
	"govolve/internal/rt"
)

// Concurrent relocation (Options.ConcurrentReloc): the Shenandoah/ZGC-style
// answer to the last stop-the-world phase that still scaled with live-set
// size. Where CollectWithMark moved *discovery* out of the DSU pause and the
// lazy pipeline moved *transformation* out, CollectReloc moves the bulk
// *copy* out:
//
//	pause   — discover updated-class instances (consume a sealed concurrent
//	          mark, or run a serial pre-flip trace), flip, eagerly evacuate
//	          only those instances (shell + old copy, the pairs the
//	          transformer pipeline needs immediately — or, in deferPairs
//	          mode, nothing at all), and remap the root slots so every root
//	          leaves the pause canonical. Arm the heap's self-healing load
//	          barrier over the old semispace and resume the world with
//	          from-space still live.
//	drain   — background relocator workers evacuate the remaining live set:
//	          a CAS cursor parses to-space [flip base, drain start) — every
//	          object the pause and the in-pause transformers created — and
//	          each evacuated copy is pushed on the PR 3 work-stealing deques
//	          for scanning. Scanning heals stale slots (SlotCAS) and
//	          evacuates their targets through the same TryForward/
//	          PublishForward claim protocol the parallel STW copy uses.
//	          Mutators help: the heap's load barrier calls back into
//	          mutatorHeal, so every from-space reference the program touches
//	          is evacuated-or-adopted on the spot and the slot healed — each
//	          slot pays the barrier at most once.
//	retire  — when the drain terminates (all workers idle, region cursor
//	          exhausted, no mutator mid-evacuation, all deques empty),
//	          from-space holds no live data. The engine finalizes on the
//	          mutator goroutine: disarm the barrier, run the deferred class
//	          cleanup, reclaim scratch. Collections, follow-up updates, and
//	          Engine.ForceDrain force-complete an unfinished drain first —
//	          the same drain contract the lazy transformer pipeline uses.
//
// Liveness needs no extra mark: the drain computes the reachability closure
// of to-space. Every root was remapped in the pause, so anything live is
// reachable from a to-space object (or is a to-space object already); the
// region scan plus the pushed copies cover exactly that closure. Objects the
// mutator allocates after the drain starts are born clean — they can only
// ever hold canonical references (loads heal, roots were remapped) — and are
// never scanned.
//
// deferPairs (vm.Options.LazyTransform ∧ ConcurrentReloc) is full deferral:
// the pause creates no pairs except those the root remap forces. Drain
// workers discover updated-class instances during evacuation, build the
// shell + old copy right there, tag the shell untransformed for the PR 6
// read barrier, and register the pair for the lazy drain to adopt. Class
// cleanup (unregistering the renamed old classes) is deferred to drain
// finalize in every reloc mode, because the drain sizes old copies by their
// old class ids.

// RelocStats summarizes a completed (or failed) relocation drain.
type RelocStats struct {
	// Objects/Words count evacuations performed after the eager pause work:
	// drain workers, the mutator load barrier, forced drains, and the
	// pause's own root-remap evacuations (which flow through the same path).
	Objects int
	Words   int
	// ScratchWords counts deferred-pair old-copy words placed in scratch.
	ScratchWords int
	// HealedSlots counts stale slots rewritten to canonical addresses —
	// mutator barrier heals plus drain fixup heals.
	HealedSlots uint64
	// DeferredPairs is the number of shell/old-copy pairs created by the
	// drain (deferPairs mode) for the lazy pipeline to adopt.
	DeferredPairs int
	// Steals counts drain-worker deque steals.
	Steals int64
	// Drain is the wall-clock time from Start (or the first forced work)
	// to termination — the copy cost that no longer sits in the pause.
	Drain time.Duration
}

// Relocation is one in-flight concurrent relocation drain. CollectReloc
// creates it inside the pause; the engine calls Start after the transformer
// phase (still inside the pause) and finalizes with Finish once Done — or
// forces completion with ForceDrain when a collection or follow-up update
// cannot wait.
type Relocation struct {
	c   *Collector
	h   *heap.Heap
	reg *rt.Registry

	deferPairs bool
	useScratch bool // deferred-pair old copies go to the scratch region

	fromLo, fromHi rt.Addr // the held from-space interval

	// The scan region [regionStart, regionEnd) is to-space from the flip to
	// the Start snapshot: pause evacuations, shells, old copies, and
	// everything the in-pause transformers allocated. It is hole-free (all
	// pause allocation is bump-serial), so a CAS cursor parses it without
	// coordination.
	regionStart rt.Addr
	regionEnd   rt.Addr
	cursor      atomic.Int64

	workers int // deque/worker count (fixed at creation)
	spawned int // workers actually running (0 until Start)
	wg      sync.WaitGroup

	deques []*deque

	idle atomic.Int32
	// mutatorBusy guards the window between a mutator-side evacuation and
	// the push of its copy: termination checks it before re-checking deque
	// emptiness, so a worker can never declare the drain done while the
	// mutator holds an unscanned copy.
	mutatorBusy atomic.Int32
	done        atomic.Bool
	failed      atomic.Bool

	errMu sync.Mutex
	err   error

	mu       sync.Mutex
	deferred map[rt.Addr]rt.Addr // shell → old copy (deferPairs mode)

	objects, words, scratchWords atomic.Int64
	healed                       atomic.Int64 // drain-side slot heals
	steals                       atomic.Int64

	started   bool // beginDrain ran (mutator goroutine)
	finished  bool // Finish ran (mutator goroutine)
	startTime time.Time
	drainNS   atomic.Int64

	mutAl *relocAllocator // mutator-side allocator (global, no TLAB)
}

// relocAllocator abstracts where an evacuation's memory comes from: drain
// workers own TLABs; the mutator (load barrier, root remap, forced drains)
// allocates under the heap mutex. dq is where evacuated copies are pushed
// for scanning.
type relocAllocator struct {
	rl    *Relocation
	tlab  *heap.TLAB // nil → global locked allocation
	stlab *heap.TLAB // scratch TLAB; nil → global scratch block
	dq    *deque
}

func (al *relocAllocator) allocCopy(size int) (rt.Addr, bool) {
	if al.tlab != nil {
		return al.tlab.Alloc(size)
	}
	return al.rl.h.AllocBlock(size)
}

func (al *relocAllocator) allocShell(size int) (rt.Addr, bool) {
	if al.tlab != nil {
		return al.tlab.AllocZeroed(size)
	}
	return al.rl.h.Alloc(size) // armed → locked and zeroed
}

func (al *relocAllocator) allocScratch(size int) (rt.Addr, bool) {
	if al.stlab != nil {
		return al.stlab.Alloc(size)
	}
	return al.rl.h.AllocScratchBlock(size)
}

func (al *relocAllocator) push(a rt.Addr) { al.dq.push(a) }

// CollectReloc is the pause half of a concurrent-relocation DSU collection.
// It returns the pause Result (eager pairs only — the pause decomposition's
// PauseCopy is pair evacuation + root remap) plus the live Relocation the
// engine must Start and eventually Finish. deferPairs selects full deferral
// for the lazy-transform pipeline. Post-flip errors leave the heap unusable
// exactly as in the STW collectors; discovery errors are ErrPreFlip.
func (c *Collector) CollectReloc(roots Roots, deferPairs bool) (*Result, *Relocation, error) {
	start := time.Now()
	h := c.Heap
	workers := c.EffectiveWorkers()
	res := &Result{Workers: workers, Relocated: true, OldForNew: make(map[rt.Addr]rt.Addr)}

	// --- discovery ---------------------------------------------------------
	var addrs []rt.Addr
	if deferPairs {
		// Full deferral: the drain discovers updated instances itself, so no
		// trace runs at all. A leftover marker's snapshot would go stale
		// across the flip — drop it (the engine does not start one in this
		// mode; this is the defensive path).
		if c.mark != nil {
			c.AbortMark()
		}
	} else if m := c.mark; m != nil && m.sealed && !m.aborted {
		var err error
		addrs, err = c.relocConsumeMark(m, roots, res)
		if err != nil {
			return nil, nil, err
		}
	} else {
		if c.mark != nil {
			c.AbortMark()
		}
		tMark := time.Now()
		var err error
		addrs, err = c.relocDiscover(roots)
		if err != nil {
			return nil, nil, preFlipErr(err)
		}
		res.PauseMark = time.Since(tMark)
	}
	// Sorted evacuation order makes the pair log a pure function of the
	// pre-flip heap layout — same determinism contract as the parallel
	// collector's merge.
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// --- flip preparation --------------------------------------------------
	fromLo, fromHi := h.ScanStart(), h.AllocPointer()
	h.Flip()

	rl := &Relocation{
		c: c, h: h, reg: c.Reg,
		deferPairs:  deferPairs,
		useScratch:  deferPairs && h.HasScratch(),
		fromLo:      fromLo,
		fromHi:      fromHi,
		regionStart: h.ScanStart(),
		workers:     workers,
		deques:      make([]*deque, workers),
		deferred:    make(map[rt.Addr]rt.Addr),
	}
	for i := range rl.deques {
		rl.deques[i] = &deque{}
	}
	rl.mutAl = &relocAllocator{rl: rl, dq: rl.deques[0]}

	tCopy := time.Now()

	// --- eager pair evacuation ---------------------------------------------
	// Only the updated-class instances the transformer pipeline needs right
	// now; everything else stays in from-space for the drain.
	useScratch := h.HasScratch()
	for _, a := range addrs {
		cls := c.Reg.ClassByID(h.ClassID(a))
		if cls == nil || cls.UpdatedTo == nil {
			continue
		}
		newCls := cls.UpdatedTo
		size := cls.Size
		shell, ok1 := h.AllocObject(newCls)
		var oldCopy rt.Addr
		var ok2 bool
		if useScratch {
			oldCopy, ok2 = h.ScratchCopy(a, size)
			if ok2 {
				res.ScratchWords += size
				// Scratch lies outside the region scan: seed the old copy
				// explicitly so the drain heals its stale slots (to-space
				// old copies are covered by the region cursor).
				rl.mutAl.push(oldCopy)
			}
		} else {
			oldCopy, ok2 = h.Copy(a, size)
		}
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted)
		}
		h.SetForward(a, shell)
		res.Log = append(res.Log, Pair{OldCopy: oldCopy, New: shell})
		res.CopiedObjects += 2
		res.CopiedWords += size + newCls.Size
	}

	// --- root remap --------------------------------------------------------
	// Every root slot leaves the pause canonical: adopt pause pairs through
	// their forwarding pointers, evacuate everything else on the spot (in
	// deferPairs mode a root hitting an updated-class instance creates its
	// pair right here).
	var remapErr error
	roots.ForEachRoot(func(v *rt.Value) {
		if remapErr != nil || !v.IsRef || v.Bits == 0 {
			return
		}
		a := v.Ref()
		if a < fromLo || a >= fromHi {
			return
		}
		to := rl.evac(a, rl.mutAl)
		if to == 0 {
			if remapErr = rl.firstErr(); remapErr == nil {
				remapErr = ErrToSpaceExhausted
			}
			return
		}
		v.Bits = uint64(to)
	})
	if remapErr != nil {
		return nil, nil, remapErr
	}
	res.PauseCopy = time.Since(tCopy)

	sort.Slice(res.Log, func(i, j int) bool { return res.Log[i].New < res.Log[j].New })
	for _, p := range res.Log {
		res.OldForNew[p.New] = p.OldCopy
	}
	res.PairsLogged = len(res.Log)

	// Arm the self-healing load barrier before the world (and the in-pause
	// transformers, which run next) touches the heap again: every from-space
	// reference loaded from here on is evacuated-or-adopted and its slot
	// healed.
	h.ArmReloc(fromLo, fromHi, rl.mutatorHeal)

	c.Collections++
	c.CopiedObjects += res.CopiedObjects
	res.Duration = time.Since(start)
	return res, rl, nil
}

// relocDiscover is the plain-reloc discovery trace: a serial pre-flip
// reachability walk that records updated-class instances. It moves nothing,
// so errors leave the heap intact (the caller wraps them ErrPreFlip). The
// trace still scales with the live set — PauseMark reports it honestly; the
// concurrent-mark mode exists to move it out of the pause too.
func (c *Collector) relocDiscover(roots Roots) ([]rt.Addr, error) {
	h := c.Heap
	lo, hi := h.ScanStart(), h.AllocPointer()
	bm := c.markBitmapFor(lo, hi)
	var stack []rt.Addr
	var addrs []rt.Addr
	var walkErr error
	push := func(a rt.Addr) {
		if walkErr != nil || a == 0 || a < lo || a >= hi {
			return
		}
		i := a - lo
		w := &bm[i>>5]
		bit := uint32(1) << (i & 31)
		if *w&bit != 0 {
			return
		}
		*w |= bit
		stack = append(stack, a)
		if !h.IsArray(a) {
			cls := c.Reg.ClassByID(h.ClassID(a))
			if cls == nil {
				walkErr = fmt.Errorf("gc: reloc discovery: object @%d with unknown class id %d", a, h.ClassID(a))
				return
			}
			if cls.UpdatedTo != nil {
				addrs = append(addrs, a)
			}
		}
	}
	roots.ForEachRoot(func(v *rt.Value) {
		if v.IsRef {
			push(v.Ref())
		}
	})
	for walkErr == nil && len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.IsArray(a) {
			if h.ArrayElemIsRef(a) {
				for i := 0; i < h.ArrayLen(a); i++ {
					push(h.Elem(a, i).Ref())
				}
			}
			continue
		}
		cls := c.Reg.ClassByID(h.ClassID(a)) // non-nil: checked at push time
		for i, isRef := range cls.RefMap {
			if isRef {
				push(h.FieldValue(a, rt.HeaderWords+i, true).Ref())
			}
		}
	}
	return addrs, walkErr
}

// relocConsumeMark consumes a sealed concurrent mark for the reloc pause:
// the same SATB-drain + root rescan CollectWithMark runs (stamped into
// PauseRescan), but instead of building the full sweep list it only gathers
// updated-class instance addresses — the trace's recorded set, anything the
// rescan additionally marks, and the allocate-black region [watermark,
// alloc). Errors are ErrPreFlip: nothing has moved yet.
func (c *Collector) relocConsumeMark(m *Marker, roots Roots, res *Result) ([]rt.Addr, error) {
	c.mark = nil
	defer c.recycleMark(m)
	h := c.Heap
	m.satb = h.DisarmSATB()
	res.MarkConcurrent = true
	res.MarkOutside = time.Duration(m.traceNS.Load())
	res.MarkSetup = m.setup
	res.MarkedObjects = m.markedObjects
	res.SATBDrained = len(m.satb)
	res.MarkUpdatedInstances = m.updatedInstances
	res.Steals = m.steals
	addrs := m.updatedAddrs

	tRescan := time.Now()
	var stack []rt.Addr
	pushIf := func(w rt.Addr) {
		if w == 0 || w < m.lo || w >= m.watermark {
			return
		}
		if m.setMarkSerial(w) {
			stack = append(stack, w)
			res.RescanMarked++
			if !h.IsArray(w) {
				if cls := c.Reg.ClassByID(h.ClassID(w)); cls != nil && cls.UpdatedTo != nil {
					addrs = append(addrs, w)
				}
			}
		}
	}
	for _, w := range m.satb {
		pushIf(w)
	}
	roots.ForEachRoot(func(v *rt.Value) {
		if v.IsRef {
			pushIf(v.Ref())
		}
	})
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.IsArray(a) {
			if h.ArrayElemIsRef(a) {
				for i := 0; i < h.ArrayLen(a); i++ {
					pushIf(h.Elem(a, i).Ref())
				}
			}
			continue
		}
		cls := c.Reg.ClassByID(h.ClassID(a))
		if cls == nil {
			return nil, preFlipErr(fmt.Errorf("gc: rescan: object @%d with unknown class id %d", a, h.ClassID(a)))
		}
		for i, isRef := range cls.RefMap {
			if isRef {
				pushIf(h.FieldValue(a, rt.HeaderWords+i, true).Ref())
			}
		}
	}
	res.PauseRescan = time.Since(tRescan)

	// Allocate-black walk: everything at or above the watermark is
	// implicitly live; collect its updated-class instances.
	holes := h.Holes()
	for len(holes) > 0 && holes[0].Addr < m.watermark {
		holes = holes[1:]
	}
	for a := m.watermark; a < h.AllocPointer(); {
		if len(holes) > 0 && holes[0].Addr == a {
			a += rt.Addr(holes[0].Size)
			holes = holes[1:]
			continue
		}
		var size int
		if h.IsArray(a) {
			size = rt.HeaderWords + h.ArrayLen(a)
		} else {
			cls := c.Reg.ClassByID(h.ClassID(a))
			if cls == nil {
				return nil, preFlipErr(fmt.Errorf("gc: reloc sweep: object @%d with unknown class id %d", a, h.ClassID(a)))
			}
			if cls.UpdatedTo != nil {
				addrs = append(addrs, a)
			}
			size = cls.Size
		}
		a += rt.Addr(size)
	}
	return addrs, nil
}

// --- the drain -------------------------------------------------------------

// Start launches the background relocator workers. Called by the engine at
// the end of the pause, after the transformer and clinit phases — their
// allocations land below the region snapshot and get scanned like everything
// else the pause created.
func (rl *Relocation) Start() {
	if rl.started {
		return
	}
	rl.beginDrain()
	rl.spawned = rl.workers
	rl.c.Rec.Emit(obs.KPhaseBegin, obs.LaneReloc, int64(rl.workers), "reloc drain")
	rl.wg.Add(rl.workers)
	for i := 0; i < rl.workers; i++ {
		go rl.runWorker(i)
	}
}

func (rl *Relocation) beginDrain() {
	rl.regionEnd = rl.h.AllocPointer()
	rl.cursor.Store(int64(rl.regionStart))
	rl.startTime = time.Now()
	rl.started = true
}

// runWorker is one relocator's drain loop: local deque, steal, region
// cursor, then the idle-termination protocol. The termination condition
// checks mutatorBusy BEFORE re-checking deque emptiness — a mutator mid-
// evacuation increments busy before claiming, so either the worker sees
// busy > 0 and stays, or the mutator's push is already visible.
func (rl *Relocation) runWorker(id int) {
	defer rl.wg.Done()
	h := rl.h
	tlab := h.NewTLAB(rl.c.tlabWords(rl.workers), false)
	var stlab *heap.TLAB
	if rl.useScratch {
		stlab = h.NewTLAB(rl.c.tlabWords(rl.workers), true)
	}
	al := &relocAllocator{rl: rl, tlab: tlab, stlab: stlab, dq: rl.deques[id]}
loop:
	for {
		if rl.done.Load() || rl.failed.Load() {
			break
		}
		if a, ok := rl.deques[id].pop(); ok {
			rl.scanObj(a, al)
			continue
		}
		if a, ok := rl.stealWork(id); ok {
			rl.scanObj(a, al)
			continue
		}
		if a, ok := rl.nextRegion(); ok {
			rl.scanObj(a, al)
			continue
		}
		rl.idle.Add(1)
		for {
			if rl.done.Load() || rl.failed.Load() {
				break loop
			}
			if rl.anyWork() || rl.regionRemaining() {
				rl.idle.Add(-1)
				continue loop
			}
			if rl.idle.Load() == int32(rl.spawned) &&
				rl.mutatorBusy.Load() == 0 &&
				!rl.anyWork() && !rl.regionRemaining() {
				rl.completeDrain()
				break loop
			}
			runtime.Gosched()
		}
	}
	tlab.Retire()
	if stlab != nil {
		stlab.Retire()
	}
}

func (rl *Relocation) stealWork(id int) (rt.Addr, bool) {
	n := len(rl.deques)
	for k := 1; k < n; k++ {
		d := rl.deques[(id+k)%n]
		if d.size.Load() == 0 {
			continue
		}
		if a, ok := d.steal(); ok {
			rl.steals.Add(1)
			return a, true
		}
	}
	return 0, false
}

func (rl *Relocation) anyWork() bool {
	for _, d := range rl.deques {
		if d.size.Load() > 0 {
			return true
		}
	}
	return false
}

func (rl *Relocation) regionRemaining() bool {
	return rl.started && rl.cursor.Load() < int64(rl.regionEnd)
}

// nextRegion claims the next to-space region object via the CAS cursor. The
// region is hole-free (pause allocation is bump-serial), so the header at
// the cursor always parses; it is read atomically because the mutator's
// lazy-tag read-modify-write may touch shell headers concurrently.
func (rl *Relocation) nextRegion() (rt.Addr, bool) {
	for {
		cur := rl.cursor.Load()
		if !rl.started || cur >= int64(rl.regionEnd) {
			return 0, false
		}
		a := rt.Addr(cur)
		hw := rl.h.SlotLoad(a)
		size := rl.h.SizeFromHeader(a, hw, rl.reg.ClassByID)
		if size < 0 {
			rl.fail(fmt.Errorf("gc: reloc drain: region object @%d with unknown class id %d", a, heap.HeaderClassID(hw)))
			return 0, false
		}
		if rl.cursor.CompareAndSwap(cur, cur+int64(size)) {
			return a, true
		}
	}
}

func (rl *Relocation) completeDrain() {
	if rl.done.CompareAndSwap(false, true) {
		rl.drainNS.Store(int64(time.Since(rl.startTime)))
		rl.c.Rec.Emit(obs.KPhaseEnd, obs.LaneReloc, rl.objects.Load(), "reloc drain")
	}
}

func (rl *Relocation) fail(err error) {
	rl.errMu.Lock()
	if rl.err == nil {
		rl.err = err
	}
	rl.errMu.Unlock()
	rl.failed.Store(true)
}

func (rl *Relocation) firstErr() error {
	rl.errMu.Lock()
	defer rl.errMu.Unlock()
	return rl.err
}

// scanObj heals every stale reference slot of one to-space (or scratch)
// object, evacuating the targets. Headers are read atomically (the mutator
// RMWs lazy tags; slot stores race with mutator writes by design — both
// sides are atomic while the barrier is armed).
func (rl *Relocation) scanObj(a rt.Addr, al *relocAllocator) {
	h := rl.h
	hw := h.SlotLoad(a)
	if heap.HeaderIsArray(hw) {
		if heap.HeaderArrayElemIsRef(hw) {
			n := h.ArrayLen(a)
			for i := 0; i < n; i++ {
				rl.healWordSlot(a+rt.HeaderWords+rt.Addr(i), al)
			}
		}
		return
	}
	cls := rl.reg.ClassByID(heap.HeaderClassID(hw))
	if cls == nil {
		rl.fail(fmt.Errorf("gc: reloc drain: object @%d with unknown class id %d", a, heap.HeaderClassID(hw)))
		return
	}
	for i, isRef := range cls.RefMap {
		if isRef {
			rl.healWordSlot(a+rt.HeaderWords+rt.Addr(i), al)
		}
	}
}

// healWordSlot canonicalizes one reference slot: load atomically, evacuate-
// or-adopt a from-space target, CAS the canonical address back. A failed CAS
// means the mutator stored a new value meanwhile — necessarily canonical, so
// nothing is lost.
func (rl *Relocation) healWordSlot(idx rt.Addr, al *relocAllocator) {
	if rl.failed.Load() {
		return
	}
	h := rl.h
	w := h.SlotLoad(idx)
	a := rt.Addr(w)
	if a < rl.fromLo || a >= rl.fromHi {
		return // null, to-space, or scratch: already canonical
	}
	to := rl.evac(a, al)
	if to == 0 {
		return // drain is failing
	}
	if h.SlotCAS(idx, w, uint64(to)) {
		rl.healed.Add(1)
	}
}

// evac evacuates (or adopts the evacuation of) one from-space object via the
// shared CAS claim/publish protocol, returning its canonical address — or 0
// when the drain is failing.
func (rl *Relocation) evac(a rt.Addr, al *relocAllocator) rt.Addr {
	h := rl.h
	for {
		hw := h.HeaderLoad(a)
		if to, forwarded, claimed := heap.HeaderForwarded(hw); forwarded {
			return to
		} else if claimed {
			if rl.failed.Load() {
				return 0
			}
			runtime.Gosched()
			continue
		}
		if !h.TryForward(a, hw) {
			continue // lost the claim race; re-read
		}
		to, ok := rl.copyClaimed(a, hw, al)
		if !ok {
			h.RestoreHeader(a, hw) // release spinners; the drain is failing
			return 0
		}
		return to
	}
}

// copyClaimed evacuates an object this caller has claimed. Updated-class
// instances must all have been paired in the pause unless deferPairs is on —
// meeting one otherwise means discovery missed a live object, and the drain
// fails loudly rather than preserving an old-layout instance past cleanup.
func (rl *Relocation) copyClaimed(a rt.Addr, hw uint64, al *relocAllocator) (rt.Addr, bool) {
	h, reg := rl.h, rl.reg
	size := h.SizeFromHeader(a, hw, reg.ClassByID)
	if size < 0 {
		rl.fail(fmt.Errorf("gc: reloc drain: object @%d with unknown class id %d", a, heap.HeaderClassID(hw)))
		return 0, false
	}
	if !heap.HeaderIsArray(hw) {
		if cls := reg.ClassByID(heap.HeaderClassID(hw)); cls != nil && cls.UpdatedTo != nil {
			if !rl.deferPairs {
				rl.fail(fmt.Errorf("gc: reloc drain: undiscovered updated-class instance @%d (%s)", a, cls.Name))
				return 0, false
			}
			return rl.deferredPair(a, hw, size, cls.UpdatedTo, al)
		}
	}
	to, ok := al.allocCopy(size)
	if !ok {
		rl.fail(ErrToSpaceExhausted)
		return 0, false
	}
	// Skip the source header word — it holds the claim sentinel; write the
	// saved original instead.
	if size > 1 {
		h.CopyWords(to+1, a+1, size-1)
	}
	h.SetWord(to, hw)
	h.PublishForward(a, to)
	rl.objects.Add(1)
	rl.words.Add(int64(size))
	al.push(to)
	return to, true
}

// deferredPair builds a shell + old copy for an updated-class instance the
// drain discovered (deferPairs mode), tags the shell untransformed for the
// lazy read barrier, and registers the pair for the lazy drain to adopt. The
// shell and its tag are written before PublishForward, so no other goroutine
// ever sees a half-built pair.
func (rl *Relocation) deferredPair(a rt.Addr, hw uint64, size int, newCls *rt.Class, al *relocAllocator) (rt.Addr, bool) {
	h := rl.h
	shell, ok1 := al.allocShell(newCls.Size)
	var oldCopy rt.Addr
	var ok2 bool
	if rl.useScratch {
		oldCopy, ok2 = al.allocScratch(size)
		if ok2 {
			rl.scratchWords.Add(int64(size))
		}
	} else {
		oldCopy, ok2 = al.allocCopy(size)
	}
	if !ok1 || !ok2 {
		rl.fail(fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted))
		return 0, false
	}
	h.SetWord(shell, uint64(newCls.ID))
	h.MarkUntransformed(shell)
	if size > 1 {
		h.CopyWords(oldCopy+1, a+1, size-1)
	}
	h.SetWord(oldCopy, hw)
	rl.mu.Lock()
	rl.deferred[shell] = oldCopy
	rl.mu.Unlock()
	h.PublishForward(a, shell)
	rl.objects.Add(2)
	rl.words.Add(int64(size + newCls.Size))
	al.push(oldCopy)
	return shell, true
}

// mutatorHeal is the heap load barrier's callback: evacuate-or-adopt one
// from-space reference on the mutator goroutine. busy brackets the window so
// the drain cannot terminate while the copy is unpushed. On a failing drain
// it returns the argument unchanged (the slot stays stale; the engine's next
// tick surfaces the error and marks the heap unusable).
func (rl *Relocation) mutatorHeal(a rt.Addr) rt.Addr {
	rl.mutatorBusy.Add(1)
	to := rl.evac(a, rl.mutAl)
	rl.mutatorBusy.Add(-1)
	if to == 0 {
		return a
	}
	return to
}

// HealObject canonicalizes every reference slot of one object immediately —
// the lazy-transform pipeline calls it on an old copy before running its
// transformer, so bulk field copies read canonical addresses. Safe mid-drain
// (idempotent against a concurrent worker scan of the same object) and
// in-pause (before Start).
func (rl *Relocation) HealObject(a rt.Addr) {
	if rl == nil || a == 0 {
		return
	}
	rl.mutatorBusy.Add(1)
	rl.scanObj(a, rl.mutAl)
	rl.mutatorBusy.Add(-1)
}

// Done reports whether the drain has terminated (completed or failed).
func (rl *Relocation) Done() bool { return rl.done.Load() || rl.failed.Load() }

// Failed reports whether the drain failed (OOM or structural error).
func (rl *Relocation) Failed() bool { return rl.failed.Load() }

// Err returns the drain's first error, if any.
func (rl *Relocation) Err() error { return rl.firstErr() }

// Backlog approximates the drain's remaining work (unscanned region words
// plus queued copies) — the obs backlog gauge. Zero once done.
func (rl *Relocation) Backlog() int {
	if rl == nil || rl.Done() {
		return 0
	}
	n := 0
	for _, d := range rl.deques {
		n += int(d.size.Load())
	}
	if rl.started {
		if rem := int64(rl.regionEnd) - rl.cursor.Load(); rem > 0 {
			n += int(rem)
		}
	}
	return n
}

// ForceDrain completes the drain on the mutator goroutine: the mutator runs
// a worker-equivalent loop (bracketing each item with the busy counter) until
// global termination. Collections, follow-up updates, and Engine.ForceDrain
// use it — the drain-contract mirror of the lazy pipeline's forceAll. Safe
// before Start (it begins the drain itself, with zero background workers).
func (rl *Relocation) ForceDrain() error {
	if !rl.started {
		rl.beginDrain()
		rl.c.Rec.Emit(obs.KPhaseBegin, obs.LaneReloc, 0, "reloc drain")
	}
	for !rl.failed.Load() && !rl.done.Load() {
		rl.mutatorBusy.Add(1)
		a, ok := rl.takeAny()
		if !ok {
			rl.mutatorBusy.Add(-1)
			if rl.idle.Load() == int32(rl.spawned) &&
				!rl.anyWork() && !rl.regionRemaining() {
				rl.completeDrain()
				break
			}
			runtime.Gosched()
			continue
		}
		rl.scanObj(a, rl.mutAl)
		rl.mutatorBusy.Add(-1)
	}
	if rl.failed.Load() {
		return rl.firstErr()
	}
	return nil
}

// takeAny claims work from any deque or the region cursor (mutator side).
func (rl *Relocation) takeAny() (rt.Addr, bool) {
	for _, d := range rl.deques {
		if d.size.Load() == 0 {
			continue
		}
		if a, ok := d.steal(); ok {
			return a, true
		}
	}
	return rl.nextRegion()
}

// Finish joins the workers, disarms the load barrier, and returns the drain
// statistics. Mutator goroutine, once Done (it force-completes defensively
// otherwise). From-space is dead after this — the next Flip may reuse it.
// The engine still owns the mode-level finalization (class cleanup, scratch
// reset, deferred-pair adoption).
func (rl *Relocation) Finish() (RelocStats, error) {
	if rl.finished {
		return RelocStats{}, nil
	}
	rl.finished = true
	if !rl.Done() {
		_ = rl.ForceDrain() // error surfaces via failed below
	}
	rl.wg.Wait()
	mutHealed := rl.h.DisarmReloc()
	st := RelocStats{
		Objects:       int(rl.objects.Load()),
		Words:         int(rl.words.Load()),
		ScratchWords:  int(rl.scratchWords.Load()),
		HealedSlots:   uint64(rl.healed.Load()) + mutHealed,
		DeferredPairs: len(rl.deferred),
		Steals:        rl.steals.Load(),
		Drain:         time.Duration(rl.drainNS.Load()),
	}
	if rl.failed.Load() {
		rl.c.Rec.Emit(obs.KPhaseEnd, obs.LaneReloc, rl.objects.Load(), "reloc drain")
		return st, rl.firstErr()
	}
	return st, nil
}

// DeferredOldFor looks up the old copy of a drain-created pair mid-drain —
// the lazy transform's fallback when a touched shell is not in its adopted
// log yet.
func (rl *Relocation) DeferredOldFor(shell rt.Addr) (rt.Addr, bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	oc, ok := rl.deferred[shell]
	return oc, ok
}

// DeferredPairs returns the drain-created pairs sorted by shell address —
// the adoption set the lazy drain takes over at finalize.
func (rl *Relocation) DeferredPairs() []Pair {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	ps := make([]Pair, 0, len(rl.deferred))
	for sh, oc := range rl.deferred {
		ps = append(ps, Pair{OldCopy: oc, New: sh})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].New < ps[j].New })
	return ps
}
