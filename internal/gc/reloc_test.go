package gc

import (
	"errors"
	"testing"
	"time"

	"govolve/internal/classfile"
	"govolve/internal/heap"
	"govolve/internal/rt"
)

// The stw/reloc equivalence suite. A concurrent-relocation collection —
// short pause (eager pairs + root remap), then a drain that evacuates the
// rest of the live set with background workers and the self-healing load
// barrier — must end in a heap observationally identical to the serial
// Cheney collector's: isomorphic reachable graph, identical values,
// identical DSU pair treatment. With the mutator quiescent during the drain
// even the copy accounting must match exactly: serial CopiedObjects ==
// reloc pause CopiedObjects + drain RelocStats.Objects (each live object is
// evacuated exactly once on either path).

// runRelocCycle drives a full reloc collection on w: pause, Start, optional
// mutation while the drain runs, force-complete, Finish.
func runRelocCycle(t testing.TB, w *world, c *Collector, deferPairs bool, mutate func()) (*Result, RelocStats) {
	t.Helper()
	res, rl, err := c.CollectReloc(w, deferPairs)
	if err != nil {
		t.Fatalf("CollectReloc: %v", err)
	}
	if !w.h.RelocArmed() {
		t.Fatal("load barrier not armed after the reloc pause")
	}
	rl.Start()
	if mutate != nil {
		mutate()
	}
	if err := rl.ForceDrain(); err != nil {
		t.Fatalf("ForceDrain: %v", err)
	}
	if !rl.Done() {
		t.Fatal("drain not done after ForceDrain")
	}
	if rl.Backlog() != 0 {
		t.Fatalf("done drain reports backlog %d", rl.Backlog())
	}
	stats, err := rl.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if w.h.RelocArmed() {
		t.Fatal("load barrier still armed after Finish")
	}
	if !res.Relocated {
		t.Fatal("result not flagged Relocated")
	}
	return res, stats
}

// runRelocEquivalence compares a quiescent reloc collection against the
// serial collector on identical worlds, with exact copy accounting.
func runRelocEquivalence(t *testing.T, seed int64, dsu bool, scratch, workers int) {
	t.Helper()
	const semi = 1 << 13
	wa := buildWorld(t, seed, semi, scratch)
	wb := buildWorld(t, seed, semi, scratch)
	if dsu {
		addUpdatedTo(t, wa)
		addUpdatedTo(t, wb)
	}

	ra, err := New(wa.h, wa.reg).Collect(wa, dsu)
	if err != nil {
		t.Fatalf("serial collect: %v", err)
	}
	cb := NewWithOptions(wb.h, wb.reg, Options{Workers: workers, ConcurrentReloc: true})
	rb, stats := runRelocCycle(t, wb, cb, false, nil)

	if got := rb.CopiedObjects + stats.Objects; got != ra.CopiedObjects {
		t.Fatalf("copied objects: serial %d, reloc pause %d + drain %d = %d",
			ra.CopiedObjects, rb.CopiedObjects, stats.Objects, got)
	}
	if got := rb.CopiedWords + stats.Words; got != ra.CopiedWords {
		t.Fatalf("copied words: serial %d, reloc %d", ra.CopiedWords, got)
	}
	if ra.PairsLogged != rb.PairsLogged || len(ra.Log) != len(rb.Log) {
		t.Fatalf("pair counts: serial %d, reloc %d", len(ra.Log), len(rb.Log))
	}
	if ra.ScratchWords != rb.ScratchWords {
		t.Fatalf("scratch words: serial %d, reloc %d", ra.ScratchWords, rb.ScratchWords)
	}
	if stats.DeferredPairs != 0 {
		t.Fatalf("eager mode created %d deferred pairs", stats.DeferredPairs)
	}
	for i := 1; i < len(rb.Log); i++ {
		if rb.Log[i-1].New >= rb.Log[i].New {
			t.Fatal("reloc pair log not sorted by new-shell address")
		}
	}
	for _, p := range rb.Log {
		if rb.OldForNew[p.New] != p.OldCopy {
			t.Fatal("OldForNew inconsistent with pair log")
		}
	}
	isoCheck(t, wa, wb, ra, rb, dsu)
}

func TestRelocCollectEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runRelocEquivalence(t, seed, false, 0, 1)
		runRelocEquivalence(t, seed, false, 0, 4)
	}
}

func TestRelocDSUCollectEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runRelocEquivalence(t, seed, true, 0, 1)
		runRelocEquivalence(t, seed, true, 0, 4)
	}
}

func TestRelocDSUCollectEquivalenceScratch(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runRelocEquivalence(t, seed, true, 1<<13, 4)
	}
	runRelocEquivalence(t, 11, true, 1<<13, 2)
	runRelocEquivalence(t, 12, true, 1<<13, 7)
}

// runRelocMarkEquivalence layers the sealed concurrent mark under the reloc
// pause (cmark-reloc mode): discovery comes from the consumed snapshot, so
// the pause runs no trace at all — PauseMark must be zero — and the result
// must still be exactly equivalent.
func runRelocMarkEquivalence(t *testing.T, seed int64, dsu bool, workers int) {
	t.Helper()
	const semi = 1 << 13
	wa := buildWorld(t, seed, semi, 0)
	wb := buildWorld(t, seed, semi, 0)
	var updatedIDs map[int]bool
	if dsu {
		addUpdatedTo(t, wa)
		addUpdatedTo(t, wb)
		updatedIDs = map[int]bool{wb.cls.ID: true}
	}

	ra, err := New(wa.h, wa.reg).Collect(wa, dsu)
	if err != nil {
		t.Fatalf("serial collect: %v", err)
	}

	cb := NewWithOptions(wb.h, wb.reg, Options{Workers: workers, ConcurrentMark: true, ConcurrentReloc: true})
	m := cb.StartMark(wb, updatedIDs)
	waitMark(t, m)
	if !cb.SealMark(m) {
		t.Fatalf("mark aborted: %v", m.Err())
	}
	rb, stats := runRelocCycle(t, wb, cb, false, nil)
	if !rb.MarkConcurrent {
		t.Fatal("consumed mark not flagged MarkConcurrent")
	}
	if rb.PauseMark != 0 {
		t.Fatalf("cmark-reloc pause reports in-pause discovery %v", rb.PauseMark)
	}
	if wb.h.SATBArmed() {
		t.Fatal("SATB barrier left armed after the reloc pause")
	}

	if got := rb.CopiedObjects + stats.Objects; got != ra.CopiedObjects {
		t.Fatalf("copied objects: serial %d, cmark-reloc %d", ra.CopiedObjects, got)
	}
	if ra.PairsLogged != rb.PairsLogged {
		t.Fatalf("pairs: serial %d, cmark-reloc %d", ra.PairsLogged, rb.PairsLogged)
	}
	isoCheck(t, wa, wb, ra, rb, dsu)
}

func waitMark(t testing.TB, m *Marker) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !m.Done() {
		if time.Now().After(deadline) {
			t.Fatal("concurrent mark did not terminate")
		}
		time.Sleep(10 * time.Microsecond)
	}
}

func TestRelocConsumesConcurrentMark(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runRelocMarkEquivalence(t, seed, false, 2)
		runRelocMarkEquivalence(t, seed, true, 1)
		runRelocMarkEquivalence(t, seed, true, 4)
	}
}

// TestRelocInFlightMutation runs the shared deterministic mutation script
// while the drain is live — stores land through the armed atomic path,
// loads heal through the barrier, allocations are born clean above the
// region snapshot — and requires the final graph isomorphic to the STW
// baseline. Because the reloc pause happens BEFORE the mutation, the
// baseline mutates after its own collection: both sides then see the same
// logical program order (pause, then mutation). Copy counts are not
// compared: the drain also evacuates objects the script kills mid-drain
// (floating garbage, reclaimed by the next collection).
func TestRelocInFlightMutation(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, workers := range []int{1, 4} {
			for _, dsu := range []bool{false, true} {
				const semi = 1 << 13
				wa := buildWorld(t, seed, semi, 0)
				wb := buildWorld(t, seed, semi, 0)
				if dsu {
					addUpdatedTo(t, wa)
					addUpdatedTo(t, wb)
				}

				ca := NewWithOptions(wa.h, wa.reg, Options{Workers: workers, ConcurrentReloc: true})
				res, rl, err := ca.CollectReloc(wa, false)
				if err != nil {
					t.Fatalf("CollectReloc: %v", err)
				}
				rl.Start()
				// Built AFTER the pause: the script captures the remapped
				// (canonical) root addresses — in DSU mode those are the new
				// shells, exactly as on the baseline below. Its logic depends
				// only on root order and graph shape, so it lands identically.
				mutationScript(t, wa)()
				if err := rl.ForceDrain(); err != nil {
					t.Fatalf("ForceDrain: %v", err)
				}
				if _, err := rl.Finish(); err != nil {
					t.Fatalf("Finish: %v", err)
				}

				rbs, err := New(wb.h, wb.reg).Collect(wb, dsu)
				if err != nil {
					t.Fatalf("STW collect: %v", err)
				}
				mutationScript(t, wb)()
				// Both sides paired the identical pre-mutation live set.
				if dsu && res.PairsLogged != rbs.PairsLogged {
					t.Fatalf("pairs: reloc %d, STW %d", res.PairsLogged, rbs.PairsLogged)
				}
				isoCheck(t, wa, wb, res, rbs, dsu)
			}
		}
	}
}

// TestRelocDeferredPairs pins full deferral (reloc + lazy transform): the
// pause creates pairs only where the root remap forces one; the drain
// builds the rest — shells tagged untransformed, old copies registered for
// adoption, every old-copy reference healed to a canonical (shell) address.
func TestRelocDeferredPairs(t *testing.T) {
	for _, scratch := range []int{0, 1 << 12} {
		w := &world{reg: rt.NewRegistry(), h: heap.NewWithScratch(1<<12, scratch)}
		w.cls = nodeClass(t, w.reg, "Node")
		const n = 10
		var addrs [n]rt.Addr
		for i := range addrs {
			addrs[i] = w.alloc(t, int64(100+i))
			if i > 0 {
				w.h.SetFieldValue(addrs[i-1], offLeft, rt.RefVal(addrs[i]))
			}
		}
		w.roots = []rt.Value{rt.RefVal(addrs[0])}
		newCls := addUpdatedTo(t, w)

		c := NewWithOptions(w.h, w.reg, Options{Workers: 2, ConcurrentReloc: true})
		res, rl, err := c.CollectReloc(w, true)
		if err != nil {
			t.Fatalf("CollectReloc: %v", err)
		}
		// Full deferral: the eager log is empty; the root remap forced
		// exactly one pair (the chain head the root points at).
		if len(res.Log) != 0 {
			t.Fatalf("deferred pause logged %d eager pairs", len(res.Log))
		}
		rl.Start()
		if err := rl.ForceDrain(); err != nil {
			t.Fatalf("ForceDrain: %v", err)
		}
		stats, err := rl.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		if stats.DeferredPairs != n {
			t.Fatalf("deferred pairs %d, want %d", stats.DeferredPairs, n)
		}
		if scratch > 0 && stats.ScratchWords == 0 {
			t.Fatal("scratch configured but no old-copy words placed there")
		}

		pairs := rl.DeferredPairs()
		if len(pairs) != n {
			t.Fatalf("DeferredPairs returned %d, want %d", len(pairs), n)
		}
		oldFor := make(map[rt.Addr]rt.Addr, n)
		for i, p := range pairs {
			if i > 0 && pairs[i-1].New >= p.New {
				t.Fatal("DeferredPairs not sorted by shell address")
			}
			if w.h.ClassID(p.New) != newCls.ID {
				t.Fatalf("shell @%d has class %d, want %d", p.New, w.h.ClassID(p.New), newCls.ID)
			}
			if !w.h.Untransformed(p.New) {
				t.Fatalf("shell @%d not tagged untransformed", p.New)
			}
			if w.h.ClassID(p.OldCopy) != w.cls.ID {
				t.Fatalf("old copy @%d has class %d, want %d", p.OldCopy, w.h.ClassID(p.OldCopy), w.cls.ID)
			}
			if scratch > 0 && !w.h.InScratch(p.OldCopy) && rl.useScratch {
				t.Fatalf("old copy @%d not in scratch", p.OldCopy)
			}
			if oc, ok := rl.DeferredOldFor(p.New); !ok || oc != p.OldCopy {
				t.Fatal("DeferredOldFor disagrees with DeferredPairs")
			}
			oldFor[p.New] = p.OldCopy
		}
		// Walk the chain through the healed old copies: root → shell,
		// shell's old copy preserves val and links to the NEXT shell.
		shell := w.roots[0].Ref()
		for i := 0; i < n; i++ {
			oc, ok := oldFor[shell]
			if !ok {
				t.Fatalf("chain node %d: shell @%d has no deferred old copy", i, shell)
			}
			if got := w.h.FieldValue(oc, offVal, false).Int(); got != int64(100+i) {
				t.Fatalf("chain node %d: old copy val %d, want %d", i, got, 100+i)
			}
			next := w.h.FieldValue(oc, offLeft, true).Ref()
			if i == n-1 {
				if next != rt.Null {
					t.Fatalf("chain tail old copy has left @%d", next)
				}
				break
			}
			if next == rt.Null || !w.h.InCurrentSpace(next) {
				t.Fatalf("chain node %d: old-copy left @%d not healed to a shell", i, next)
			}
			shell = next
		}
	}
}

// TestRelocDrainToSpaceExhaustion: the pause fits (one widening pair), but
// from-space was packed so full that the drain's plain evacuations cannot —
// the drain must fail with the typed error, surfaced by Finish, and the
// relocation must report Failed (the engine marks the heap unusable).
func TestRelocDrainToSpaceExhaustion(t *testing.T) {
	reg := rt.NewRegistry()
	w := &world{reg: reg, h: heap.New(128), cls: nodeClass(t, reg, "Node")}
	special := nodeClass(t, reg, "Special")
	sp, ok := w.h.AllocObject(special)
	if !ok {
		t.Fatal("alloc Special")
	}
	var prev rt.Addr = sp
	for {
		a, ok := w.h.AllocObject(w.cls)
		if !ok {
			break
		}
		w.h.SetFieldValue(a, offLeft, rt.RefVal(prev))
		prev = a
	}
	w.roots = []rt.Value{rt.RefVal(prev)}
	newDef, _ := classfile.NewClass("SpecialV2", "").
		Field("val", "I").Field("left", "LSpecialV2;").Field("right", "LSpecialV2;").
		Field("extra", "I").Field("extra2", "I").
		Build()
	newCls, err := reg.Load(newDef)
	if err != nil {
		t.Fatal(err)
	}
	special.UpdatedTo = newCls

	c := NewWithOptions(w.h, w.reg, Options{Workers: 2, ConcurrentReloc: true})
	_, rl, err := c.CollectReloc(w, false)
	if err != nil {
		// Acceptable variant: the pause itself hits the wall (post-flip
		// fatal). Either way the typed error must surface.
		if !errors.Is(err, ErrToSpaceExhausted) {
			t.Fatalf("pause error %v is not ErrToSpaceExhausted", err)
		}
		return
	}
	rl.Start()
	_, ferr := rl.Finish()
	if ferr == nil {
		t.Fatal("expected drain exhaustion")
	}
	if !errors.Is(ferr, ErrToSpaceExhausted) {
		t.Fatalf("drain error %v is not ErrToSpaceExhausted", ferr)
	}
	if !rl.Failed() || rl.Err() == nil {
		t.Fatal("failed drain not reporting Failed/Err")
	}
}

// TestRelocForceDrainBeforeStart: a collection or follow-up update can land
// between the pause and Start — ForceDrain must complete the whole drain on
// the mutator with zero background workers.
func TestRelocForceDrainBeforeStart(t *testing.T) {
	w := buildWorld(t, 21, 1<<13, 0)
	addUpdatedTo(t, w)
	c := NewWithOptions(w.h, w.reg, Options{Workers: 4, ConcurrentReloc: true})
	res, rl, err := c.CollectReloc(w, false)
	if err != nil {
		t.Fatalf("CollectReloc: %v", err)
	}
	if err := rl.ForceDrain(); err != nil {
		t.Fatalf("ForceDrain before Start: %v", err)
	}
	if !rl.Done() {
		t.Fatal("drain not done")
	}
	rl.Start() // must be a no-op after completion (started already set)
	stats, err := rl.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if stats.Objects == 0 || res.PairsLogged == 0 {
		t.Fatal("forced drain did no work")
	}
	if err := WalkReachable(w.h, w.reg, w, func(rt.Addr, *rt.Class) error { return nil }); err != nil {
		t.Fatalf("post-drain heap audit: %v", err)
	}
}

// TestRelocFlipGuard pins the from-space hold: flipping with the barrier
// armed would hand the held space to the allocator while stale slots still
// point into it.
func TestRelocFlipGuard(t *testing.T) {
	w := buildWorld(t, 5, 1<<13, 0)
	c := NewWithOptions(w.h, w.reg, Options{ConcurrentReloc: true})
	_, rl, err := c.CollectReloc(w, false)
	if err != nil {
		t.Fatalf("CollectReloc: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Flip with armed relocation barrier did not panic")
			}
		}()
		w.h.Flip()
	}()
	if err := rl.ForceDrain(); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.Finish(); err != nil {
		t.Fatal(err)
	}
}

// FuzzRelocDrain fuzzes the quiescent equivalence property over world
// seeds, worker counts, and DSU-ness.
func FuzzRelocDrain(f *testing.F) {
	f.Add(int64(1), uint8(1), false)
	f.Add(int64(2), uint8(4), true)
	f.Add(int64(3), uint8(2), true)
	f.Add(int64(17), uint8(7), false)
	f.Fuzz(func(t *testing.T, seed int64, workers uint8, dsu bool) {
		runRelocEquivalence(t, seed, dsu, 0, int(workers%8)+1)
	})
}
