package gc

import (
	"fmt"

	"govolve/internal/heap"
	"govolve/internal/rt"
)

// WalkReachable traverses the reachable object graph read-only, calling
// visit exactly once per reachable object (cls is nil for arrays). It is
// the foundation of whole-VM invariant checking (internal/storm): unlike
// Collect it moves nothing, so it can run between any two scheduler slices
// to audit the heap the mutator actually sees.
//
// The walk itself validates structural soundness and stops with an error
// on the first violation:
//
//   - every reachable reference lands inside the current semi-space and
//     below the allocation pointer (no stale from-space or scratch refs),
//   - no reachable object carries a forwarding pointer (forwarding state
//     must not outlive a collection),
//   - every non-array object's class id resolves via reg.ClassByID,
//   - array lengths are non-negative and the recorded object size stays
//     inside the allocated region.
//
// visit may return an error to abort the walk; it is propagated verbatim.
func WalkReachable(h *heap.Heap, reg *rt.Registry, roots Roots, visit func(a rt.Addr, cls *rt.Class) error) error {
	seen := make(map[rt.Addr]bool)
	var stack []rt.Addr
	var walkErr error

	push := func(v rt.Value, where string) {
		if walkErr != nil || !v.IsRef || v.Bits == 0 {
			return
		}
		a := v.Ref()
		if seen[a] {
			return
		}
		if !h.InCurrentSpace(a) {
			if h.InScratch(a) {
				walkErr = fmt.Errorf("heap walk: %s holds scratch-region ref @%d", where, a)
			} else {
				walkErr = fmt.Errorf("heap walk: %s holds from-space/out-of-heap ref @%d", where, a)
			}
			return
		}
		if a >= h.AllocPointer() {
			walkErr = fmt.Errorf("heap walk: %s holds ref @%d beyond allocation pointer %d", where, a, h.AllocPointer())
			return
		}
		if _, fwd := h.Forwarded(a); fwd {
			walkErr = fmt.Errorf("heap walk: %s holds ref @%d with live forwarding pointer", where, a)
			return
		}
		seen[a] = true
		stack = append(stack, a)
	}

	roots.ForEachRoot(func(v *rt.Value) { push(*v, "root set") })

	for walkErr == nil && len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if h.IsArray(a) {
			n := h.ArrayLen(a)
			if n < 0 {
				return fmt.Errorf("heap walk: array @%d has negative length %d", a, n)
			}
			if end := a + rt.Addr(h.ObjectSize(a, reg.ClassByID)); end > h.AllocPointer() {
				return fmt.Errorf("heap walk: array @%d (len %d) extends past allocation pointer", a, n)
			}
			if err := visit(a, nil); err != nil {
				return err
			}
			if h.ArrayElemIsRef(a) {
				for i := 0; i < n; i++ {
					push(h.Elem(a, i), fmt.Sprintf("array @%d[%d]", a, i))
				}
			}
			continue
		}

		cls := reg.ClassByID(h.ClassID(a))
		if cls == nil {
			return fmt.Errorf("heap walk: object @%d has unknown class id %d", a, h.ClassID(a))
		}
		if end := a + rt.Addr(cls.Size); end > h.AllocPointer() {
			return fmt.Errorf("heap walk: object @%d (%s, %d words) extends past allocation pointer", a, cls.Name, cls.Size)
		}
		if err := visit(a, cls); err != nil {
			return err
		}
		for i, isRef := range cls.RefMap {
			if !isRef {
				continue
			}
			push(h.FieldValue(a, rt.HeaderWords+i, true),
				fmt.Sprintf("object @%d (%s) slot %d", a, cls.Name, i))
		}
	}
	return walkErr
}
