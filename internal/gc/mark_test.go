package gc

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"govolve/internal/rt"
)

// The concurrent-mark equivalence suite. CollectWithMark must produce a heap
// observationally identical to the STW collectors' — isomorphic reachable
// graph, identical DSU pair treatment for every reachable object — for any
// interleaving of mutator activity with the concurrent trace. With the
// mutator quiescent during the mark the copy counts must match exactly; with
// in-flight mutation the concurrent path may additionally copy floating
// garbage (objects that died during the trace), which is invisible to the
// reachable-graph walk and reclaimed by the next collection.

// runMarkCycle drives a full concurrent-mark collection on w: snapshot +
// trace (mutate, if given, runs while the barrier is armed), seal, pause.
func runMarkCycle(t *testing.T, w *world, c *Collector, dsu bool, updatedIDs map[int]bool, mutate func()) *Result {
	t.Helper()
	m := c.StartMark(w, updatedIDs)
	if mutate != nil {
		mutate()
	}
	deadline := time.Now().Add(10 * time.Second)
	for !m.Done() {
		if time.Now().After(deadline) {
			t.Fatal("concurrent mark did not terminate")
		}
		time.Sleep(10 * time.Microsecond)
	}
	if !c.SealMark(m) {
		t.Fatalf("mark aborted: %v", m.Err())
	}
	if !w.h.SATBArmed() {
		t.Fatal("barrier disarmed at seal: mutations between seal and pause would go unlogged")
	}
	res, err := c.CollectWithMark(w, dsu)
	if err != nil {
		t.Fatalf("CollectWithMark: %v", err)
	}
	if w.h.SATBArmed() {
		t.Fatal("barrier still armed after the pause")
	}
	if !res.MarkConcurrent {
		t.Fatal("result not flagged MarkConcurrent")
	}
	return res
}

// runMarkEquivalence compares a quiescent concurrent-mark collection against
// the serial Cheney collector on identical worlds. Quiescence means no
// floating garbage, so even the copy counts must match.
func runMarkEquivalence(t *testing.T, seed int64, dsu bool, scratch, workers int) {
	t.Helper()
	const semi = 1 << 13
	wa := buildWorld(t, seed, semi, scratch)
	wb := buildWorld(t, seed, semi, scratch)
	var updatedIDs map[int]bool
	if dsu {
		addUpdatedTo(t, wa)
		addUpdatedTo(t, wb)
		updatedIDs = map[int]bool{wb.cls.ID: true}
	}

	ra, err := New(wa.h, wa.reg).Collect(wa, dsu)
	if err != nil {
		t.Fatalf("serial collect: %v", err)
	}
	cb := NewWithOptions(wb.h, wb.reg, Options{Workers: workers, ConcurrentMark: true})
	rb := runMarkCycle(t, wb, cb, dsu, updatedIDs, nil)

	if ra.CopiedObjects != rb.CopiedObjects {
		t.Fatalf("copied objects: STW %d, concurrent %d", ra.CopiedObjects, rb.CopiedObjects)
	}
	if ra.CopiedWords != rb.CopiedWords {
		t.Fatalf("copied words: STW %d, concurrent %d", ra.CopiedWords, rb.CopiedWords)
	}
	if ra.PairsLogged != rb.PairsLogged {
		t.Fatalf("pairs: STW %d, concurrent %d", ra.PairsLogged, rb.PairsLogged)
	}
	for i := 1; i < len(rb.Log); i++ {
		if rb.Log[i-1].New >= rb.Log[i].New {
			t.Fatal("concurrent log not sorted by new-shell address")
		}
	}
	if rb.PauseMark != 0 {
		t.Fatalf("concurrent collection reports in-pause mark %v", rb.PauseMark)
	}
	isoCheck(t, wa, wb, ra, rb, dsu)
}

func TestConcurrentMarkEquivalenceSerialSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runMarkEquivalence(t, seed, false, 0, 1)
	}
}

func TestConcurrentMarkEquivalenceParallelSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runMarkEquivalence(t, seed, false, 0, 4)
	}
}

func TestConcurrentMarkDSUEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		runMarkEquivalence(t, seed, true, 0, 1)
		runMarkEquivalence(t, seed, true, 0, 4)
	}
}

func TestConcurrentMarkDSUEquivalenceScratch(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		runMarkEquivalence(t, seed, true, 1<<13, 4)
	}
	runMarkEquivalence(t, 11, true, 1<<13, 2)
	runMarkEquivalence(t, 12, true, 1<<13, 7)
}

// mutationScript applies a deterministic in-flight mutation to a buildWorld
// heap while the mark runs: it rewires edges between rooted nodes (SATB
// deletion-barrier traffic), severs edges (dead-during-mark objects), and
// allocates a fresh chain published through a root (allocate-black traffic).
// The script depends only on the world's initial layout, so running it on an
// identical world with no mark in flight produces the identical final graph.
func mutationScript(t *testing.T, w *world) func() {
	t.Helper()
	// Collect the node addresses reachable as direct roots (stable across
	// identical worlds: buildWorld is deterministic).
	var nodes []rt.Addr
	for _, r := range w.roots {
		a := r.Ref()
		if a != rt.Null && !w.h.IsArray(a) {
			nodes = append(nodes, a)
		}
	}
	return func() {
		n := len(nodes)
		if n < 4 {
			t.Fatal("mutation script needs at least 4 rooted nodes")
		}
		// Rewire: every rooted node's left edge points at its successor —
		// each store overwrites (and logs, while armed) the previous value.
		for i, a := range nodes {
			w.h.SetFieldValue(a, offLeft, rt.RefVal(nodes[(i+1)%n]))
		}
		// Sever: half the right edges go null. Anything only reachable
		// through them dies during the mark (floating garbage for the
		// concurrent path).
		for i := 0; i < n; i += 2 {
			w.h.SetFieldValue(nodes[i], offRight, rt.NullVal)
		}
		// Allocate-black: a fresh chain, published via the first root.
		var prev rt.Addr
		for k := 0; k < 8; k++ {
			a, ok := w.h.AllocObject(w.cls)
			if !ok {
				t.Fatal("alloc during mark")
			}
			w.h.SetFieldValue(a, offVal, rt.IntVal(int64(7000+k)))
			w.h.SetFieldValue(a, offLeft, rt.RefVal(prev))
			prev = a
		}
		w.h.SetFieldValue(nodes[0], offRight, rt.RefVal(prev))
		// Churn the ref arrays too (SetElem barrier path).
		for _, r := range w.roots {
			a := r.Ref()
			if a != rt.Null && w.h.IsArray(a) && w.h.ArrayElemIsRef(a) {
				w.h.SetElem(a, 0, rt.RefVal(nodes[n-1]))
			}
		}
	}
}

// runMutationEquivalence runs the same deterministic mutation script on two
// identical worlds — on A while the concurrent mark traces, on B before a
// plain STW collection — and requires isomorphic post-collection graphs.
// Copy counts are NOT compared: the concurrent path may copy floating
// garbage the STW path never sees.
func runMutationEquivalence(t *testing.T, seed int64, dsu bool, workers int) {
	t.Helper()
	const semi = 1 << 13
	wa := buildWorld(t, seed, semi, 0)
	wb := buildWorld(t, seed, semi, 0)
	var updatedIDs map[int]bool
	if dsu {
		addUpdatedTo(t, wa)
		addUpdatedTo(t, wb)
		updatedIDs = map[int]bool{wa.cls.ID: true}
	}

	ca := NewWithOptions(wa.h, wa.reg, Options{Workers: workers, ConcurrentMark: true})
	ra := runMarkCycle(t, wa, ca, dsu, updatedIDs, mutationScript(t, wa))

	mutationScript(t, wb)()
	rb, err := NewWithOptions(wb.h, wb.reg, Options{Workers: workers}).Collect(wb, dsu)
	if err != nil {
		t.Fatalf("STW collect: %v", err)
	}

	// The concurrent path can only ever copy MORE (floating garbage).
	if ra.CopiedObjects < rb.CopiedObjects {
		t.Fatalf("concurrent copied %d < STW %d: live objects escaped the mark",
			ra.CopiedObjects, rb.CopiedObjects)
	}
	if dsu && ra.PairsLogged < rb.PairsLogged {
		t.Fatalf("concurrent paired %d < STW %d instances", ra.PairsLogged, rb.PairsLogged)
	}
	isoCheck(t, wa, wb, ra, rb, dsu)
}

func TestConcurrentMarkInFlightMutation(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runMutationEquivalence(t, seed, false, 1)
		runMutationEquivalence(t, seed, false, 4)
	}
}

func TestConcurrentMarkInFlightMutationDSU(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		runMutationEquivalence(t, seed, true, 1)
		runMutationEquivalence(t, seed, true, 4)
	}
}

// TestCollectAbortsInFlightMark pins the safety interlock: an ordinary
// collection (the allocation-pressure path) aborts an in-flight mark — the
// flip would move memory under the tracers — and the collection itself
// stays correct. CollectWithMark afterwards falls back to plain Collect.
func TestCollectAbortsInFlightMark(t *testing.T) {
	w := buildWorld(t, 42, 1<<13, 0)
	c := NewWithOptions(w.h, w.reg, Options{Workers: 2, ConcurrentMark: true})
	m := c.StartMark(w, nil)
	res, err := c.Collect(w, false)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !m.Aborted() {
		t.Fatal("in-flight mark not aborted by Collect")
	}
	if c.MarkActive() {
		t.Fatal("collector still holds the aborted marker")
	}
	if w.h.SATBArmed() {
		t.Fatal("barrier left armed after abort")
	}
	if res.MarkConcurrent {
		t.Fatal("fallback collection flagged MarkConcurrent")
	}
	// The engine's fallback path: CollectWithMark with no usable marker must
	// behave as plain Collect.
	res2, err := c.CollectWithMark(w, false)
	if err != nil {
		t.Fatalf("fallback CollectWithMark: %v", err)
	}
	if res2.MarkConcurrent {
		t.Fatal("fallback CollectWithMark flagged MarkConcurrent")
	}
	if res2.CopiedObjects != res.CopiedObjects {
		t.Fatalf("fallback copied %d, first collection %d", res2.CopiedObjects, res.CopiedObjects)
	}
}

// rootsView exposes a fixed subset of root values — used to hand StartMark
// a *partial* snapshot, simulating the interleaving where the concurrent
// trace loses a race with the mutator for part of the graph (the missed
// part plays the role of the log-only-reachable set).
type rootsView struct{ vals []*rt.Value }

func (r rootsView) ForEachRoot(fn func(*rt.Value)) {
	for _, v := range r.vals {
		fn(v)
	}
}

// TestBarrierArmedBetweenSealAndPause pins the soundness hole a disarm-at-
// seal would open. Snapshot graph: root b (traced, marked black) and root
// x → z where x's subgraph is hidden from the trace (partial root view).
// Between seal and pause — the blocked safe-point wait — the mutator:
//
//	b.left = z   // store z's only surviving ref into a black object
//	x.left = nil // sever the unmarked path to z
//
// The rescan never revisits marked objects, so z is reachable from the
// pause's perspective only through the deletion log. If SealMark had
// disarmed the barrier, the severing would be unlogged, z never copied,
// and fixup would fail with "SATB invariant violated" on a legal program.
// With the barrier armed until the pause, the severed edge is logged and
// z survives.
func TestBarrierArmedBetweenSealAndPause(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := newWorld(t, 4096)
		b := w.alloc(t, 1)
		x := w.alloc(t, 2)
		z := w.alloc(t, 3)
		w.h.SetFieldValue(x, offLeft, rt.RefVal(z))
		w.roots = []rt.Value{rt.RefVal(b), rt.RefVal(x)}

		c := NewWithOptions(w.h, w.reg, Options{Workers: workers, ConcurrentMark: true})
		m := c.StartMark(rootsView{[]*rt.Value{&w.roots[0]}}, nil)
		deadline := time.Now().Add(10 * time.Second)
		for !m.Done() {
			if time.Now().After(deadline) {
				t.Fatal("concurrent mark did not terminate")
			}
			time.Sleep(10 * time.Microsecond)
		}
		if !c.SealMark(m) {
			t.Fatalf("workers=%d: mark aborted: %v", workers, m.Err())
		}
		if !w.h.SATBArmed() {
			t.Fatalf("workers=%d: barrier disarmed at seal", workers)
		}

		// The blocked-wait mutations: hide z behind black b, sever x → z.
		w.h.SetFieldValue(b, offLeft, rt.RefVal(z))
		w.h.SetFieldValue(x, offLeft, rt.NullVal)

		res, err := c.CollectWithMark(w, false)
		if err != nil {
			t.Fatalf("workers=%d: hidden object lost: %v", workers, err)
		}
		if w.h.SATBArmed() {
			t.Fatalf("workers=%d: barrier still armed after the pause", workers)
		}
		if res.SATBDrained == 0 {
			t.Fatalf("workers=%d: severed edge was not logged", workers)
		}
		nb := w.roots[0].Ref()
		nz := w.h.FieldValue(nb, offLeft, true).Ref()
		if nz == 0 || w.h.FieldValue(nz, offVal, false).Int() != 3 {
			t.Fatalf("workers=%d: z not preserved through b.left", workers)
		}
	}
}

// TestPreFlipErrorLeavesHeapUsable pins the error contract the engine's
// apply path relies on: a structural error raised by CollectWithMark
// *before* the semispace flip (here: the live-list walk trips over an
// unknown class ID) is tagged ErrPreFlip, nothing has been moved or
// forwarded, and the heap remains fully collectable afterwards — the
// update fails cleanly instead of killing the VM.
func TestPreFlipErrorLeavesHeapUsable(t *testing.T) {
	w := newWorld(t, 4096)
	b := w.alloc(t, 1)
	g := w.alloc(t, 99) // garbage: unreachable, but the linear sweep walk parses it
	w.roots = []rt.Value{rt.RefVal(b)}

	c := NewWithOptions(w.h, w.reg, Options{ConcurrentMark: true})
	m := c.StartMark(w, nil)
	deadline := time.Now().Add(10 * time.Second)
	for !m.Done() {
		if time.Now().After(deadline) {
			t.Fatal("concurrent mark did not terminate")
		}
		time.Sleep(10 * time.Microsecond)
	}
	if !c.SealMark(m) {
		t.Fatalf("mark aborted: %v", m.Err())
	}
	w.h.SetWord(g, 9999) // corrupt the header: unknown class id

	_, err := c.CollectWithMark(w, false)
	if err == nil {
		t.Fatal("expected a structural error from the live-list walk")
	}
	if !errors.Is(err, ErrPreFlip) {
		t.Fatalf("pre-flip structural error not tagged ErrPreFlip: %v", err)
	}
	if w.h.SATBArmed() {
		t.Fatal("barrier left armed after failed pause")
	}
	// Nothing flipped or forwarded: the root still points at the original b
	// with its field intact, and after repairing the header a plain
	// collection succeeds on the very same heap.
	if w.roots[0].Ref() != b || w.h.FieldValue(b, offVal, false).Int() != 1 {
		t.Fatal("heap mutated by a pre-flip failure")
	}
	w.h.SetWord(g, uint64(w.cls.ID))
	if _, err := c.Collect(w, false); err != nil {
		t.Fatalf("heap not usable after pre-flip failure: %v", err)
	}
}

// TestAbortMarkIdempotent pins the discard path the engine uses when an
// update resolves without consuming its snapshot.
func TestAbortMarkIdempotent(t *testing.T) {
	w := buildWorld(t, 7, 1<<13, 0)
	c := NewWithOptions(w.h, w.reg, Options{ConcurrentMark: true})
	c.StartMark(w, nil)
	c.AbortMark()
	c.AbortMark() // second abort is a no-op
	if c.MarkActive() || w.h.SATBArmed() {
		t.Fatal("abort left state behind")
	}
}

// TestMarkScratchPooled asserts the mark-phase scratch (bitmap, deques, SATB
// buffer) is reused across collections — the storm harness applies hundreds
// of updates against one VM and must not re-allocate per cycle.
func TestMarkScratchPooled(t *testing.T) {
	w := buildWorld(t, 3, 1<<13, 0)
	c := NewWithOptions(w.h, w.reg, Options{Workers: 2, ConcurrentMark: true})

	runMarkCycle(t, w, c, false, nil, nil)
	bitmap0 := c.pool.bitmap[:1]
	deques0 := c.pool.deques

	runMarkCycle(t, w, c, false, nil, nil)
	if &c.pool.bitmap[:1][0] != &bitmap0[0] {
		t.Fatal("mark bitmap re-allocated on second cycle")
	}
	if len(deques0) == 0 || len(c.pool.deques) == 0 || c.pool.deques[0] != deques0[0] {
		t.Fatal("mark deques re-allocated on second cycle")
	}
}

// BenchmarkConcurrentMarkCycle measures a full mark+pause cycle, with
// ReportAllocs asserting the pooled scratch keeps steady-state allocation
// flat (the equivalent of the obs plane's zero-alloc gate, but for the
// collector's own bookkeeping).
func BenchmarkConcurrentMarkCycle(b *testing.B) {
	b.ReportAllocs()
	w := buildWorld(b, 5, 1<<15, 0)
	c := NewWithOptions(w.h, w.reg, Options{Workers: 2, ConcurrentMark: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := c.StartMark(w, nil)
		for !m.Done() {
			runtime.Gosched()
		}
		if !c.SealMark(m) {
			b.Fatalf("mark aborted: %v", m.Err())
		}
		if _, err := c.CollectWithMark(w, false); err != nil {
			b.Fatal(err)
		}
	}
}
