package gc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govolve/internal/heap"
	"govolve/internal/obs"
	"govolve/internal/rt"
)

// The parallel DSU collector. JVOLVE's update pause is dominated by the
// full-heap collection that finds and transforms every instance of an
// updated class; the paper defers "a more sophisticated GC" to future work.
// This is that GC: the stop-the-world window is divided across N workers.
//
//   - Roots are partitioned across workers (the VM deals its thread stacks
//     round-robin via ChunkedRoots; arbitrary root providers fall back to a
//     gather-and-split).
//   - Forwarding pointers are installed with a CAS claim/publish protocol
//     on the header word (heap.TryForward / heap.PublishForward), so
//     exactly one worker evacuates each object and losers adopt the
//     winner's address.
//   - Workers allocate copies and shells from per-worker TLABs carved off
//     to-space (and the scratch region, when configured), never contending
//     on the global bump pointer per object.
//   - Grey objects drain through per-worker deques with work-stealing:
//     owners pop LIFO (cache-hot), thieves steal FIFO (coarse-grained).
//   - DSU pair logging and OldForNew are per-worker and merged
//     deterministically — sorted by the new shell's to-space address — so
//     Result.Log order is a pure function of the final heap layout, not of
//     scheduling interleavings.
//
// Termination uses the classic idle-counter protocol: only a worker's owner
// pushes to its deque, so once every worker is idle no deque can become
// non-empty again, and the last worker to go idle declares completion.

// ChunkedRoots is optionally implemented by root providers (the VM) that
// can split the root set into n disjoint enumerators whose union is exactly
// ForEachRoot. The parallel collector runs one chunk per worker,
// concurrently — chunks must not share root slots.
type ChunkedRoots interface {
	Roots
	RootChunks(n int) []Roots
}

// defaultTLABWords is the preferred per-worker carve size. It is clamped so
// that all workers' buffers together cannot strand more than ~1/8 of a
// semispace in abandoned tails.
const defaultTLABWords = 4096

// deque is one worker's grey-object queue. The owner pushes and pops at the
// tail; thieves steal from the head. A mutex is plenty here: pushes and
// pops are amortized over whole-object scans, and the size counter lets
// idle workers poll emptiness without taking the lock.
type deque struct {
	mu   sync.Mutex
	buf  []rt.Addr
	head int
	size atomic.Int32
}

func (d *deque) push(a rt.Addr) {
	d.mu.Lock()
	d.buf = append(d.buf, a)
	d.size.Store(int32(len(d.buf) - d.head))
	d.mu.Unlock()
}

// pop takes the newest entry (owner side).
func (d *deque) pop() (rt.Addr, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
		d.size.Store(0)
		return 0, false
	}
	a := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	d.size.Store(int32(len(d.buf) - d.head))
	return a, true
}

// steal takes the oldest entry (thief side).
func (d *deque) steal() (rt.Addr, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return 0, false
	}
	a := d.buf[d.head]
	d.head++
	if d.head > 64 && d.head*2 >= len(d.buf) {
		n := copy(d.buf, d.buf[d.head:])
		d.buf = d.buf[:n]
		d.head = 0
	}
	d.size.Store(int32(len(d.buf) - d.head))
	return a, true
}

// pstate is the shared collection state.
type pstate struct {
	workers int
	deques  []*deque

	idle   atomic.Int32
	done   atomic.Bool
	failed atomic.Bool

	errMu sync.Mutex
	err   error

	steals atomic.Int64
}

func (ps *pstate) fail(err error) {
	ps.errMu.Lock()
	if ps.err == nil {
		ps.err = err
	}
	ps.errMu.Unlock()
	ps.failed.Store(true)
	ps.done.Store(true)
}

func (ps *pstate) firstErr() error {
	ps.errMu.Lock()
	defer ps.errMu.Unlock()
	return ps.err
}

// pworker is one copy/scan worker.
type pworker struct {
	c  *Collector
	ps *pstate
	id int

	dsu        bool
	useScratch bool

	tlab  *heap.TLAB
	stlab *heap.TLAB // scratch TLAB (old copies), nil unless useScratch

	dq *deque

	log           []Pair
	copiedObjects int
	copiedWords   int
	scratchWords  int
	steals        int64
}

// forward evacuates (or adopts the evacuation of) the reference in v,
// rewriting it in place. It is the parallel analog of the serial closure in
// collectSerial, with the header CAS protocol replacing the unsynchronized
// forwarded-check.
func (w *pworker) forward(v *rt.Value) {
	if w.ps.failed.Load() || !v.IsRef || v.Bits == 0 {
		return
	}
	h := w.c.Heap
	a := v.Ref()
	if h.InCurrentSpace(a) || h.InScratch(a) {
		return // already copied (to-space object, shell, or old copy)
	}
	for {
		hw := h.HeaderLoad(a)
		if to, forwarded, claimed := heap.HeaderForwarded(hw); forwarded {
			v.Bits = uint64(to)
			return
		} else if claimed {
			// Another worker is mid-copy; wait for it to publish.
			if w.ps.failed.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		if !h.TryForward(a, hw) {
			continue // lost the claim race; re-read the header
		}
		to, ok := w.copyClaimed(a, hw)
		if !ok {
			h.RestoreHeader(a, hw) // release spinners; collection is failing
			return
		}
		v.Bits = uint64(to)
		return
	}
}

// copyClaimed evacuates an object this worker has claimed. It must either
// publish a forwarding pointer and return true, or fail the collection and
// return false (the caller restores the header).
func (w *pworker) copyClaimed(a rt.Addr, hw uint64) (rt.Addr, bool) {
	h, reg := w.c.Heap, w.c.Reg
	size := h.SizeFromHeader(a, hw, reg.ClassByID)
	if size < 0 {
		w.ps.fail(fmt.Errorf("gc: object @%d with unknown class id %d", a, heap.HeaderClassID(hw)))
		return 0, false
	}
	if w.dsu && !heap.HeaderIsArray(hw) {
		cls := reg.ClassByID(heap.HeaderClassID(hw))
		if cls != nil && cls.UpdatedTo != nil {
			newCls := cls.UpdatedTo
			shell, ok1 := w.tlab.AllocZeroed(newCls.Size)
			var oldCopy rt.Addr
			var ok2 bool
			if w.useScratch {
				oldCopy, ok2 = w.stlab.Alloc(size)
				if ok2 {
					w.scratchWords += size
				}
			} else {
				oldCopy, ok2 = w.tlab.Alloc(size)
			}
			if !ok1 || !ok2 {
				w.ps.fail(fmt.Errorf("gc: DSU copy: %w", ErrToSpaceExhausted))
				return 0, false
			}
			h.SetWord(shell, uint64(newCls.ID))
			// Skip the source header word — it holds the claim sentinel;
			// write the saved original instead.
			if size > 1 {
				h.CopyWords(oldCopy+1, a+1, size-1)
			}
			h.SetWord(oldCopy, hw)
			h.PublishForward(a, shell)
			w.log = append(w.log, Pair{OldCopy: oldCopy, New: shell})
			w.copiedObjects += 2
			w.copiedWords += size + newCls.Size
			// The shell is all zeros — nothing to scan; the old copy is
			// scanned like any live object so transformers can dereference
			// forwarded referents.
			w.dq.push(oldCopy)
			return shell, true
		}
	}
	to, ok := w.tlab.Alloc(size)
	if !ok {
		w.ps.fail(ErrToSpaceExhausted)
		return 0, false
	}
	if size > 1 {
		h.CopyWords(to+1, a+1, size-1)
	}
	h.SetWord(to, hw)
	h.PublishForward(a, to)
	w.copiedObjects++
	w.copiedWords += size
	w.dq.push(to)
	return to, true
}

// scan forwards every reference inside one grey object (a to-space copy or
// a scratch old copy — never a from-space object, so plain header reads are
// safe: nobody CASes current-space headers).
func (w *pworker) scan(a rt.Addr) {
	h := w.c.Heap
	if h.IsArray(a) {
		if h.ArrayElemIsRef(a) {
			n := h.ArrayLen(a)
			for i := 0; i < n; i++ {
				v := h.Elem(a, i)
				w.forward(&v)
				h.SetElem(a, i, v)
			}
		}
		return
	}
	cls := w.c.Reg.ClassByID(h.ClassID(a))
	if cls == nil {
		w.ps.fail(fmt.Errorf("gc: object @%d with unknown class id %d", a, h.ClassID(a)))
		return
	}
	for i, isRef := range cls.RefMap {
		if !isRef {
			continue
		}
		v := h.FieldValue(a, rt.HeaderWords+i, true)
		w.forward(&v)
		h.SetFieldValue(a, rt.HeaderWords+i, v)
	}
}

// drain runs the worker's scan loop to global termination.
func (w *pworker) drain() {
	ps := w.ps
	for {
		if ps.done.Load() {
			return
		}
		if a, ok := w.dq.pop(); ok {
			w.scan(a)
			continue
		}
		if a, ok := w.stealWork(); ok {
			w.scan(a)
			continue
		}
		// Nothing local, nothing to steal: go idle. Only owners push to
		// their own deques, so "all workers idle" implies no deque can ever
		// become non-empty again — the last worker to observe that
		// terminates the collection.
		ps.idle.Add(1)
		for {
			if ps.done.Load() {
				return
			}
			if w.anyWork() {
				ps.idle.Add(-1)
				break
			}
			if ps.idle.Load() == int32(ps.workers) {
				ps.done.Store(true)
				return
			}
			runtime.Gosched()
		}
	}
}

func (w *pworker) stealWork() (rt.Addr, bool) {
	n := w.ps.workers
	for k := 1; k < n; k++ {
		d := w.ps.deques[(w.id+k)%n]
		if d.size.Load() == 0 {
			continue
		}
		if a, ok := d.steal(); ok {
			w.ps.steals.Add(1)
			w.steals++
			return a, true
		}
	}
	return 0, false
}

func (w *pworker) anyWork() bool {
	for _, d := range w.ps.deques {
		if d.size.Load() > 0 {
			return true
		}
	}
	return false
}

// tlabWords resolves the per-worker carve size for this heap.
func (c *Collector) tlabWords(workers int) int {
	n := c.Opts.TLABWords
	if n <= 0 {
		n = defaultTLABWords
	}
	// All workers' stranded tails together should not exceed ~1/8 of a
	// semispace, or small-heap DSU collections would OOM on slack alone.
	if lim := c.Heap.SemiWords() / (8 * workers); n > lim {
		n = lim
	}
	if n < 64 {
		n = 64
	}
	return n
}

// collectParallel is the multi-worker analog of collectSerial.
func (c *Collector) collectParallel(roots Roots, dsu bool, workers int) (*Result, error) {
	start := time.Now()
	h := c.Heap
	h.Flip()
	useScratch := dsu && h.HasScratch()

	// Partition the roots. The VM hands out disjoint per-worker chunks;
	// arbitrary providers are gathered serially and split.
	var chunks []Roots
	if cr, ok := roots.(ChunkedRoots); ok {
		chunks = cr.RootChunks(workers)
	} else {
		chunks = splitRoots(roots, workers)
	}

	ps := &pstate{workers: workers, deques: make([]*deque, workers)}
	ws := make([]*pworker, workers)
	tlabSize := c.tlabWords(workers)
	for i := range ws {
		ps.deques[i] = &deque{}
		ws[i] = &pworker{
			c: c, ps: ps, id: i,
			dsu: dsu, useScratch: useScratch,
			tlab: h.NewTLAB(tlabSize, false),
			dq:   ps.deques[i],
		}
		if useScratch {
			ws[i].stlab = h.NewTLAB(tlabSize, true)
		}
	}

	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *pworker) {
			defer wg.Done()
			// Per-worker flight-recorder lane: one copy/scan span plus
			// copied-words and steal summaries (the recorder is mutex-
			// protected, so concurrent emission is safe).
			c.Rec.Emit(obs.KPhaseBegin, obs.LaneGCWorker(i), 0, "gc copy/scan")
			if i < len(chunks) && chunks[i] != nil {
				chunks[i].ForEachRoot(w.forward)
			}
			w.drain()
			c.Rec.Emit(obs.KGCWorkerCopy, obs.LaneGCWorker(i), int64(w.copiedWords), "")
			if w.steals > 0 {
				c.Rec.Emit(obs.KGCWorkerSteal, obs.LaneGCWorker(i), w.steals, "")
			}
			c.Rec.Emit(obs.KPhaseEnd, obs.LaneGCWorker(i), int64(w.copiedWords), "gc copy/scan")
		}(i, w)
	}
	wg.Wait()

	waste := 0
	for _, w := range ws {
		w.tlab.Retire()
		waste += w.tlab.Waste
		if w.stlab != nil {
			w.stlab.Retire()
			waste += w.stlab.Waste
		}
	}

	if ps.failed.Load() {
		return nil, ps.firstErr()
	}

	// Deterministic merge: per-worker logs and counters fold into one
	// result, with the update log sorted by new-shell address so its order
	// is a function of the final heap layout, not of which worker won which
	// race first.
	res := &Result{Workers: workers, WorkerWords: make([]int, workers), TLABWaste: waste, Steals: ps.steals.Load()}
	total := 0
	for _, w := range ws {
		total += len(w.log)
	}
	if dsu {
		res.Log = make([]Pair, 0, total)
		res.OldForNew = make(map[rt.Addr]rt.Addr, total)
	}
	for i, w := range ws {
		res.Log = append(res.Log, w.log...)
		res.CopiedObjects += w.copiedObjects
		res.CopiedWords += w.copiedWords
		res.ScratchWords += w.scratchWords
		res.WorkerWords[i] = w.copiedWords
	}
	sort.Slice(res.Log, func(i, j int) bool { return res.Log[i].New < res.Log[j].New })
	for _, p := range res.Log {
		res.OldForNew[p.New] = p.OldCopy
	}
	res.PairsLogged = len(res.Log)

	c.Collections++
	c.CopiedObjects += res.CopiedObjects
	res.Duration = time.Since(start)
	res.PauseCopy = res.Duration // STW: the trace is fused with the copy
	return res, nil
}

// splitRoots is the fallback partitioner for providers that only implement
// Roots: gather every slot serially, then deal contiguous shares.
func splitRoots(roots Roots, n int) []Roots {
	var slots []*rt.Value
	roots.ForEachRoot(func(v *rt.Value) { slots = append(slots, v) })
	chunks := make([]Roots, n)
	per := (len(slots) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(slots) {
			lo = len(slots)
		}
		if hi > len(slots) {
			hi = len(slots)
		}
		share := slots[lo:hi]
		chunks[i] = RootsFunc(func(fn func(*rt.Value)) {
			for _, v := range share {
				fn(v)
			}
		})
	}
	return chunks
}
