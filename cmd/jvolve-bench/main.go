// Command jvolve-bench regenerates every table and figure of the paper's
// evaluation:
//
//	jvolve-bench -exp table1    # update-pause microbenchmark grid (Table 1)
//	jvolve-bench -exp fig6      # pause decomposition series (Figure 6)
//	jvolve-bench -exp fig5      # steady-state throughput/latency (Figure 5)
//	jvolve-bench -exp tables234 # UPT summaries for all three apps (Tables 2–4)
//	jvolve-bench -exp matrix    # the §4 "20 of 22 updates" experience
//	jvolve-bench -exp ablation  # eager vs lazy-indirection steady-state cost
//	jvolve-bench -exp transformers # §4.1: interpreted vs native default transformers
//	jvolve-bench -exp scratch   # §3.5: old-copy scratch region memory pressure
//	jvolve-bench -exp active    # §3.5: UpStare-style active-method updates
//	jvolve-bench -exp storm     # randomized update-storm soak with invariant checking
//	jvolve-bench -exp stream    # long-horizon version-chain replay (writes BENCH_stream.json)
//	jvolve-bench -exp gcpause   # GC-phase pause vs collection workers (writes BENCH_gc.json)
//	jvolve-bench -exp pausecmp  # STW vs concurrent-mark DSU pause (writes BENCH_pause.json)
//	jvolve-bench -exp obs       # pause decomposition via obs histograms (writes BENCH_obs.json)
//	jvolve-bench -exp dispatch  # interpreter tier throughput grid (writes BENCH_dispatch.json)
//	jvolve-bench -exp all
//
// -scale divides the microbenchmark object counts (1 = the paper's full
// 280k–3.67M objects; the default 8 finishes quickly on a laptop).
//
// The storm soak is reproducible: a failure prints its seed, and
// `jvolve-bench -exp storm -seed N -updates K` replays the exact run.
//
// Observability:
//
//	-trace out.json    write a Chrome trace-event timeline (Perfetto-loadable)
//	                   of the flight-recorder events captured during fig5
//	-metrics PATH      write a Prometheus text snapshot of the run's metrics
//	                   registry (PATH "-" means stdout)
//	-serve ADDR        serve live /metrics (Prometheus text), /timeline
//	                   (Chrome trace JSON), /verdicts (gate judgments, JSON),
//	                   and /profile (folded stacks, FlameGraph-ready) over
//	                   HTTP until interrupted
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"govolve/internal/apps"
	"govolve/internal/bench"
	"govolve/internal/core"
	"govolve/internal/obs"
	"govolve/internal/storm"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6|fig5|tables234|matrix|ablation|transformers|scratch|active|gcpause|pausecmp|storm|stream|obs|dispatch|all")
	scale := flag.Int("scale", 8, "divide microbenchmark object counts by this factor (1 = paper scale)")
	runs := flag.Int("runs", 3, "runs per measurement cell (paper: 21 for fig5)")
	duration := flag.Duration("duration", 500*time.Millisecond, "measurement window per fig5/ablation run (paper: 60s)")
	seed := flag.Int64("seed", 1, "storm: PRNG seed (failures print the seed to replay)")
	updates := flag.Int("updates", 500, "storm: applied updates to drive per run")
	pauseBudget := flag.Float64("pause-budget", -1, "storm: arm a pause-budget health gate at this many seconds under the halt policy (-1 disables; 0 is a deterministic injected regression — a real pause is always > 0)")
	gcOut := flag.String("gc-out", "BENCH_gc.json", "gcpause: output JSON path (empty disables the file)")
	pauseOut := flag.String("pause-out", "BENCH_pause.json", "pausecmp: output JSON path (empty disables the file)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "obs: output JSON path (empty disables the file)")
	streamOut := flag.String("stream-out", "BENCH_stream.json", "stream: output JSON path (empty disables the file)")
	dispatchOut := flag.String("dispatch-out", "BENCH_dispatch.json", "dispatch: output JSON path (empty disables the file)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline of the fig5 flight-recorder events (load in Perfetto)")
	metricsOut := flag.String("metrics", "", "write a Prometheus text-format metrics snapshot to this path ('-' for stdout)")
	serveAddr := flag.String("serve", "", "serve live /metrics and /timeline over HTTP on this address until interrupted")
	flag.Parse()

	// The shared observability plane: fig5 VMs attach this recorder,
	// registry, gate engine, and profiler; -trace/-metrics snapshot them at
	// exit, and -serve exposes them live.
	rec := obs.NewRecorder(obs.DefaultCapacity)
	reg := obs.NewRegistry()
	gates := obs.NewGateEngine(nil, 0, reg)
	prof := obs.NewProfiler(0)
	if *serveAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		mux.HandleFunc("/timeline", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteChromeTrace(w, rec.Events())
		})
		mux.HandleFunc("/verdicts", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = gates.WriteJSON(w)
		})
		mux.HandleFunc("/profile", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = prof.WriteFolded(w)
		})
		go func() {
			if err := http.ListenAndServe(*serveAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "jvolve-bench: -serve %s: %v\n", *serveAddr, err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "jvolve-bench: serving /metrics, /timeline, /verdicts, /profile on %s\n", *serveAddr)
	}

	run := func(name string, f func() error) {
		switch *exp {
		case name, "all":
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "jvolve-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}

	var microCells []bench.Cell
	var microSizes []bench.MicroConfig
	fractions := bench.DefaultFractions()
	runMicro := func() error {
		if microCells != nil {
			return nil
		}
		if *scale <= 1 {
			microSizes = bench.PaperSizes()
		} else {
			microSizes = bench.ScaledSizes(*scale)
		}
		fmt.Printf("Microbenchmark sweep: %d sizes × %d fractions × %d run(s)\n",
			len(microSizes), len(fractions), *runs)
		cells, err := bench.RunSweep(bench.MicroSweep{
			Sizes: microSizes, Fractions: fractions, Runs: *runs,
		}, os.Stderr)
		if err != nil {
			return err
		}
		microCells = cells
		return nil
	}

	run("table1", func() error {
		if err := runMicro(); err != nil {
			return err
		}
		fmt.Println("=== Table 1: JVOLVE update pause time ===")
		bench.PrintTable1(os.Stdout, microSizes, fractions, microCells)
		return nil
	})
	run("fig6", func() error {
		if err := runMicro(); err != nil {
			return err
		}
		fmt.Println("=== Figure 6 ===")
		bench.PrintFig6(os.Stdout, microSizes, fractions, microCells)
		fmt.Println()
		return nil
	})
	run("fig5", func() error {
		fmt.Println("=== Figure 5 ===")
		app := apps.Webserver()
		results, err := bench.RunFig5(app, bench.DefaultFig5Configs(app),
			bench.Fig5Options{Runs: *runs, Duration: *duration,
				Recorder: rec, Metrics: reg, Gates: gates, Profiler: prof}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintFig5(os.Stdout, results)
		if v := gates.Last(); v != nil {
			fmt.Printf("last gate %s\n", v)
		}
		fmt.Println()
		return nil
	})
	run("tables234", func() error {
		fmt.Println("=== Tables 2-4: UPT release summaries ===")
		for _, app := range apps.All() {
			rows, err := bench.SummarizeApp(app)
			if err != nil {
				return err
			}
			bench.PrintTable(os.Stdout, app, rows)
		}
		return nil
	})
	run("matrix", func() error {
		fmt.Println("=== Update applicability (paper §4: 20 of 22) ===")
		var all []apps.MatrixEntry
		for _, app := range apps.All() {
			entries, err := apps.RunMatrix(app, 1<<20)
			if err != nil {
				return err
			}
			all = append(all, entries...)
		}
		bench.PrintMatrix(os.Stdout, all)
		fmt.Println()
		return nil
	})
	run("ablation", func() error {
		fmt.Println("=== Ablation: steady-state cost of lazy-update indirection ===")
		res, err := bench.RunAblation(apps.Webserver(), *runs, *duration, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintAblation(os.Stdout, res)
		fmt.Println()
		return nil
	})
	run("transformers", func() error {
		fmt.Println("=== Extension: transformer execution strategy (§4.1 optimization) ===")
		objects := 280_000 / *scale
		if *scale <= 1 {
			objects = 280_000
		}
		res, err := bench.RunTransformerStrategy(objects, *runs, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintTransformerStrategy(os.Stdout, res)
		fmt.Println()
		return nil
	})
	run("scratch", func() error {
		fmt.Println("=== Extension: scratch region for old copies (§3.5 memory pressure) ===")
		objects := 280_000 / *scale
		if *scale <= 1 {
			objects = 280_000
		}
		rows, err := bench.RunScratchPressure(objects, nil, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintScratch(os.Stdout, objects, rows)
		fmt.Println()
		return nil
	})
	run("active", func() error {
		fmt.Println("=== Extension: active-method updates (UpStare-style, §3.5 future work) ===")
		var all []apps.MatrixEntry
		for _, app := range []*apps.App{apps.Webserver(), apps.EmailServer()} {
			entries, err := apps.RunActiveExperiment(app, 1<<20)
			if err != nil {
				return err
			}
			all = append(all, entries...)
		}
		bench.PrintMatrix(os.Stdout, all)
		fmt.Println()
		return nil
	})

	run("gcpause", func() error {
		fmt.Println("=== Extension: parallel DSU collection (GC-phase pause vs workers) ===")
		sizes := []int{240_000 / *scale, 960_000 / *scale}
		if *scale <= 1 {
			sizes = []int{240_000, 960_000}
		}
		rep, err := bench.RunGCPause(bench.GCPauseSweep{
			Sizes: sizes, WorkerCounts: []int{1, 2, 4, 8},
			Runs: *runs, FastDefaults: true,
		}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintGCPause(os.Stdout, rep)
		if *gcOut != "" {
			if err := bench.WriteGCPauseJSON(*gcOut, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *gcOut)
		}
		fmt.Println()
		return nil
	})

	run("pausecmp", func() error {
		fmt.Println("=== Extension: concurrent mark / lazy transform / concurrent reloc (STW vs concurrent DSU pause) ===")
		sizes := []int{240_000 / *scale, 960_000 / *scale}
		if *scale <= 1 {
			sizes = []int{240_000, 960_000}
		}
		rep, err := bench.RunPauseCmp(bench.PauseCmpSweep{
			Sizes: sizes, Runs: *runs, FastDefaults: true,
		}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintPauseCmp(os.Stdout, rep)
		if *pauseOut != "" {
			if err := bench.WritePauseCmpJSON(*pauseOut, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *pauseOut)
		}
		fmt.Println()
		return nil
	})

	run("obs", func() error {
		fmt.Println("=== Extension: DSU pause decomposition via the observability plane ===")
		rep, err := bench.RunObsPause(bench.ObsPauseOptions{Runs: *runs}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintObsPause(os.Stdout, rep)
		if *obsOut != "" {
			if err := bench.WriteObsPauseJSON(*obsOut, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *obsOut)
		}
		fmt.Println()
		return nil
	})

	run("storm", func() error {
		fmt.Println("=== Extension: randomized update-storm soak (whole-VM invariant checking) ===")
		cfgs := []storm.Config{
			{Seed: *seed, Updates: *updates},
			{Seed: *seed, Updates: *updates, ScratchWords: 1 << 14, FastDefaults: true, OSROpt: true},
			{Seed: *seed, Updates: *updates, FastDefaults: true, Workers: 4},
			{Seed: *seed, Updates: *updates, ScratchWords: 1 << 14, FastDefaults: true, Lazy: true},
			{Seed: *seed, Updates: *updates, FastDefaults: true, ConcurrentReloc: true},
			{Seed: *seed, Updates: *updates, ScratchWords: 1 << 14, FastDefaults: true, ConcurrentMark: true, ConcurrentReloc: true, Lazy: true},
		}
		if *pauseBudget >= 0 {
			for i := range cfgs {
				cfgs[i].GateSpecs = []obs.GateSpec{{
					Name: "pause-budget", Metric: obs.MPauseTotal,
					Agg: obs.AggSum, Cmp: obs.CmpLE,
					Threshold: *pauseBudget, WallClock: true,
				}}
				cfgs[i].GatePolicy = core.GateHalt
			}
		}
		for _, cfg := range cfgs {
			rep, err := storm.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("seed=%d updates=%d scratch=%v fastdefaults=%v osropt=%v workers=%d lazy=%v cmark=%v reloc=%v: "+
				"applied=%d aborted=%d rejected=%d checks=%d probes=%d steps=%d\n",
				rep.Seed, *updates, cfg.ScratchWords > 0, cfg.FastDefaults, cfg.OSROpt, cfg.Workers, cfg.Lazy,
				cfg.ConcurrentMark, cfg.ConcurrentReloc,
				rep.Applied, rep.Aborted, rep.Rejected, rep.Checks, rep.Probes, rep.Steps)
		}
		fmt.Println()
		return nil
	})

	run("stream", func() error {
		fmt.Println("=== Extension: long-horizon update streams (multi-release chain replay) ===")
		rep, err := bench.RunStream(bench.StreamSweep{
			Seed: *seed, Hostile: true, FastDefaults: true,
		}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintStream(os.Stdout, rep)
		if *streamOut != "" {
			if err := bench.WriteStreamJSON(*streamOut, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *streamOut)
		}
		fmt.Println()
		return nil
	})

	run("dispatch", func() error {
		fmt.Println("=== Extension: interpreter dispatch tiers (superinstructions + inline caches) ===")
		rep, err := bench.RunDispatch(bench.DispatchSweep{Rounds: *runs}, os.Stderr)
		if err != nil {
			return err
		}
		bench.PrintDispatch(os.Stdout, rep)
		if *dispatchOut != "" {
			if err := bench.WriteDispatchJSON(*dispatchOut, rep); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *dispatchOut)
		}
		fmt.Println()
		return nil
	})

	switch *exp {
	case "table1", "fig6", "fig5", "tables234", "matrix", "ablation", "transformers", "scratch", "active", "gcpause", "pausecmp", "storm", "stream", "obs", "dispatch", "all":
	default:
		fmt.Fprintf(os.Stderr, "jvolve-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jvolve-bench: -trace: %v\n", err)
			os.Exit(1)
		}
		doc := rec.BuildTrace()
		prof.AppendCounterTrack(doc)
		if err := doc.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "jvolve-bench: -trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "jvolve-bench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d flight-recorder events, %d profile samples; load in ui.perfetto.dev)\n",
			*traceOut, len(rec.Events()), prof.TotalSamples())
	}
	if *metricsOut != "" {
		out := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "jvolve-bench: -metrics: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := reg.WritePrometheus(out); err != nil {
			fmt.Fprintf(os.Stderr, "jvolve-bench: -metrics: %v\n", err)
			os.Exit(1)
		}
		if *metricsOut != "-" {
			fmt.Printf("wrote %s (Prometheus text exposition)\n", *metricsOut)
		}
	}
	if *serveAddr != "" {
		fmt.Fprintf(os.Stderr, "jvolve-bench: still serving on %s; Ctrl-C to exit\n", *serveAddr)
		select {}
	}
}
