// Command govolve runs a toy-language program, optionally applying a
// dynamic software update mid-run:
//
//	govolve -main Main prog.jva
//	govolve -main App -update v2.jva -tag 1 -after 50 v1.jva
//
// With -update, the VM runs -after scheduler slices of the old version,
// then applies the update (UPT diff, default transformers) and continues to
// completion. -transformers supplies a JvolveTransformers class overriding
// the generated defaults, and -blacklist restricts extra methods
// ("Class.name(sig)ret", comma separated).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"govolve"
	"govolve/internal/asm"
	"govolve/internal/classfile"
	"govolve/internal/core"
	"govolve/internal/upt"
)

func main() {
	mainClass := flag.String("main", "Main", "class whose main()V to run")
	updatePath := flag.String("update", "", "new-version source to apply mid-run")
	transformersPath := flag.String("transformers", "", "custom JvolveTransformers source")
	tag := flag.String("tag", "old", "rename tag for old classes (vTAG_Name)")
	after := flag.Int("after", 20, "scheduler slices to run before updating")
	blacklist := flag.String("blacklist", "", "extra restricted methods, e.g. 'App.handle()V,App.tick()V'")
	timeout := flag.Duration("timeout", 15*time.Second, "DSU safe point timeout (the paper's default is 15s)")
	heap := flag.Int("heap", 1<<20, "semispace size in words")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: govolve [flags] program.jva")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *mainClass, *updatePath, *transformersPath, *tag, *blacklist, *after, *timeout, *heap); err != nil {
		fmt.Fprintf(os.Stderr, "govolve: %v\n", err)
		os.Exit(1)
	}
}

func run(progPath, mainClass, updatePath, transformersPath, tag, blacklist string, after int, timeout time.Duration, heap int) error {
	src, err := os.ReadFile(progPath)
	if err != nil {
		return err
	}
	prog, err := govolve.Assemble(progPath, string(src))
	if err != nil {
		return err
	}
	machine, err := govolve.NewVM(govolve.Options{HeapWords: heap})
	if err != nil {
		return err
	}
	if err := machine.LoadProgram(prog); err != nil {
		return err
	}
	if _, err := machine.SpawnMain(mainClass); err != nil {
		return err
	}

	if updatePath == "" {
		return finish(machine)
	}

	machine.Step(after)
	newSrc, err := os.ReadFile(updatePath)
	if err != nil {
		return err
	}
	newProg, err := govolve.Assemble(updatePath, string(newSrc))
	if err != nil {
		return err
	}
	spec, err := govolve.PrepareUpdate(tag, prog, newProg)
	if err != nil {
		return err
	}
	if transformersPath != "" {
		tSrc, err := os.ReadFile(transformersPath)
		if err != nil {
			return err
		}
		classes, err := asm.Assemble(transformersPath, string(tSrc))
		if err != nil {
			return err
		}
		for _, m := range classes[0].Methods {
			spec.OverrideTransformer(m)
		}
	}
	if blacklist != "" {
		for _, item := range strings.Split(blacklist, ",") {
			ref, err := parseMethodRef(strings.TrimSpace(item))
			if err != nil {
				return err
			}
			spec.AddBlacklist(ref)
		}
	}

	engine := govolve.NewEngine(machine)
	res, err := engine.ApplyNow(spec, core.Options{Timeout: timeout})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "govolve: update %s (attempts %d, barriers %d, OSR %d, transformed %d, pause %v)\n",
		res.Outcome, res.Stats.Attempts, res.Stats.BarriersInstalled,
		res.Stats.OSRFrames, res.Stats.TransformedObjects, res.Stats.PauseTotal)
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "govolve: %v\n", res.Err)
	}
	return finish(machine)
}

func finish(machine *govolve.VM) error {
	if err := machine.Run(); err != nil {
		return err
	}
	for _, th := range machine.Threads {
		if th.Err != nil {
			return fmt.Errorf("thread %s: %w", th.Name, th.Err)
		}
	}
	return nil
}

func parseMethodRef(s string) (upt.MethodRef, error) {
	dot := strings.IndexByte(s, '.')
	paren := strings.IndexByte(s, '(')
	if dot < 0 || paren < dot {
		return upt.MethodRef{}, fmt.Errorf("bad method reference %q (want Class.name(sig)ret)", s)
	}
	return upt.MethodRef{
		Class: s[:dot],
		Name:  s[dot+1 : paren],
		Sig:   classfile.Sig(s[paren:]),
	}, nil
}
