// Command upt is the Update Preparation Tool (paper §3.1) as a standalone
// program: it diffs two program versions and emits the update
// specification — class updates (direct and transitively affected),
// method-body updates, category-(2) indirect methods — plus the generated
// default transformer class and the flattened old-version definitions.
//
//	upt -tag 131 old.jva new.jva
//	upt -tag 131 -dump-transformers old.jva new.jva
package main

import (
	"flag"
	"fmt"
	"os"

	"govolve"
	"govolve/internal/upt"
)

func main() {
	tag := flag.String("tag", "old", "rename tag for old classes (vTAG_Name)")
	dumpTransformers := flag.Bool("dump-transformers", false, "print the generated JvolveTransformers source")
	dumpOldDefs := flag.Bool("dump-old-defs", false, "print the flattened renamed old-version classes")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: upt [flags] old.jva new.jva")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *tag, *dumpTransformers, *dumpOldDefs); err != nil {
		fmt.Fprintf(os.Stderr, "upt: %v\n", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath, tag string, dumpTransformers, dumpOldDefs bool) error {
	oldSrc, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newSrc, err := os.ReadFile(newPath)
	if err != nil {
		return err
	}
	oldProg, err := govolve.Assemble(oldPath, string(oldSrc))
	if err != nil {
		return err
	}
	newProg, err := govolve.Assemble(newPath, string(newSrc))
	if err != nil {
		return err
	}
	spec, err := upt.Prepare(tag, oldProg, newProg)
	if err != nil {
		return err
	}

	fmt.Printf("update specification (%s -> %s, tag %s)\n", oldPath, newPath, tag)
	printList := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Printf("  %s:\n", title)
		for _, it := range items {
			fmt.Printf("    %s\n", it)
		}
	}
	printList("added classes", spec.AddedClasses)
	printList("deleted classes", spec.DeletedClasses)
	printList("class updates (direct)", spec.DirectClassUpdates)
	var transitive []string
	for _, c := range spec.ClassUpdates {
		direct := false
		for _, d := range spec.DirectClassUpdates {
			if c == d {
				direct = true
			}
		}
		if !direct {
			transitive = append(transitive, c)
		}
	}
	printList("class updates (transitively affected)", transitive)
	if len(spec.MethodBodyUpdates) > 0 {
		fmt.Println("  method body updates:")
		for _, m := range spec.MethodBodyUpdates {
			fmt.Printf("    %s\n", m)
		}
	}
	if len(spec.IndirectMethods) > 0 {
		fmt.Println("  indirect methods (category 2: unchanged bytecode, stale compiled code):")
		for _, m := range spec.IndirectMethods {
			fmt.Printf("    %s\n", m)
		}
	}
	for name, d := range spec.Diffs {
		fmt.Printf("  diff %s: fields +%d -%d ~%d, methods +%d -%d, bodies %d, signatures %d\n",
			name, len(d.FieldsAdded), len(d.FieldsDeleted), len(d.FieldsChanged),
			len(d.MethodsAdded), len(d.MethodsDeleted),
			len(d.MethodsBodyChanged), len(d.MethodsSigChanged))
	}

	if dumpOldDefs {
		fmt.Println("\n// --- flattened old-version classes ---")
		for _, name := range spec.ClassUpdates {
			if def := spec.OldFlatDefs[spec.RenamedName(name)]; def != nil {
				fmt.Print(def.String())
			}
		}
	}
	if dumpTransformers {
		fmt.Println("\n// --- generated default transformers ---")
		fmt.Print(spec.Transformers.String())
	}
	return nil
}
